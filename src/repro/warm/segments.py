"""Refcounted POSIX shared-memory segments holding NumPy arrays.

One :class:`SegmentManager` per process tracks every segment that process
has opened.  The *publisher* creates a segment (``publish``), keeps it
alive for the plane's lifetime and eventually destroys it (``unlink``);
*attachers* in other processes map the same pages read-only (``attach``)
and drop their mapping with ``release``.  A :class:`SegmentSpec` — name,
dtype, shape — is all that crosses process boundaries; the array payload
itself is never pickled.

Lifecycle discipline (statically enforced by repro-lint rule RL009): every
``SharedMemory`` construction here is guarded so the segment is closed —
and, for owners, unlinked — on *every* exit path, including mid-publish
failures.  ``shutdown`` reports anything still open as leaked, which the
tests treat as a hard failure.

The OS-level segment names are deterministic per process
(pid + monotonic counter): collisions with a concurrent publisher surface
as :class:`DuplicateSegmentError` rather than being papered over with
random names, keeping publishes reproducible.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

__all__ = [
    "DuplicateSegmentError",
    "SegmentError",
    "SegmentGoneError",
    "SegmentManager",
    "SegmentSpec",
    "unique_segment_name",
]


class SegmentError(RuntimeError):
    """Base class for shared-memory segment lifecycle errors."""


class DuplicateSegmentError(SegmentError):
    """A segment (or plane registry name) was published twice."""


class SegmentGoneError(SegmentError):
    """Attach raced an unlink: the named segment no longer exists."""


@dataclass(frozen=True)
class SegmentSpec:
    """Picklable handle for one published array segment."""

    name: str
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        """Exact payload size; the OS segment may be page-rounded larger."""
        return int(np.dtype(self.dtype).itemsize) * math.prod(self.shape)


_NAME_COUNTER = 0


def unique_segment_name(tag: str = "seg") -> str:
    """A process-unique OS segment name (no randomness, no clock)."""
    global _NAME_COUNTER
    _NAME_COUNTER += 1
    return f"repro-{os.getpid()}-{_NAME_COUNTER}-{tag}"


@dataclass
class _OpenSegment:
    """One segment this process has mapped: the handle plus bookkeeping."""

    shm: shared_memory.SharedMemory
    spec: SegmentSpec
    refs: int
    owner: bool


class SegmentManager:
    """Tracks every segment opened by this process, by OS name.

    Publishers own their segments (``owner=True``) and must ``unlink``;
    attachers hold a refcount and ``release``.  Anything still open at
    ``shutdown`` is closed defensively and reported as leaked.
    """

    def __init__(self) -> None:
        self._open: dict[str, _OpenSegment] = {}

    # ------------------------------------------------------------------
    # publish / attach
    # ------------------------------------------------------------------
    def publish(self, array: np.ndarray, name: str | None = None) -> SegmentSpec:
        """Copy ``array`` into a fresh segment; returns its picklable spec."""
        array = np.ascontiguousarray(array)
        name = name if name is not None else unique_segment_name()
        if name in self._open:
            raise DuplicateSegmentError(
                f"segment {name!r} is already open in this process"
            )
        spec = SegmentSpec(name=name, dtype=str(array.dtype), shape=tuple(array.shape))
        shm: shared_memory.SharedMemory | None = None
        try:
            # size floor of 1: zero-byte POSIX segments are not portable
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, array.nbytes)
            )
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
        except FileExistsError as error:
            raise DuplicateSegmentError(
                f"OS segment {name!r} already exists (concurrent publisher?)"
            ) from error
        except BaseException:
            if shm is not None:
                shm.close()
                shm.unlink()
            raise
        self._open[name] = _OpenSegment(shm=shm, spec=spec, refs=1, owner=True)
        return spec

    def attach(self, spec: SegmentSpec) -> np.ndarray:
        """A read-only zero-copy array over the published segment.

        Each attach bumps the refcount; pair with :meth:`release`.
        Raises :class:`SegmentGoneError` when the segment was unlinked (or
        never published on this machine).
        """
        segment = self._open.get(spec.name)
        if segment is None:
            shm: shared_memory.SharedMemory | None = None
            try:
                shm = shared_memory.SharedMemory(name=spec.name)
                if shm.size < spec.nbytes:
                    raise SegmentError(
                        f"segment {spec.name!r} holds {shm.size} bytes but the "
                        f"spec describes {spec.nbytes}"
                    )
            except FileNotFoundError as error:
                raise SegmentGoneError(
                    f"segment {spec.name!r} is gone: it was unlinked or never "
                    f"published on this machine"
                ) from error
            except BaseException:
                if shm is not None:
                    shm.close()
                raise
            segment = _OpenSegment(shm=shm, spec=spec, refs=0, owner=False)
            self._open[spec.name] = segment
        segment.refs += 1
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.shm.buf)
        # every attached view is read-only — the owner's included: writes
        # belong in publish(); one in-place store through an attach would
        # corrupt the dataset for every worker mapping these pages (RL011)
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # release / unlink
    # ------------------------------------------------------------------
    def release(self, name: str) -> None:
        """Drop one attach reference; the mapping closes at refcount zero."""
        segment = self._open.get(name)
        if segment is None:
            raise SegmentError(f"segment {name!r} is not open in this process")
        segment.refs -= 1
        if segment.refs <= 0 and not segment.owner:
            segment.shm.close()
            del self._open[name]

    def unlink(self, name: str) -> None:
        """Destroy an owned segment: close the mapping and remove the name."""
        segment = self._open.get(name)
        if segment is None:
            raise SegmentError(f"segment {name!r} is not open in this process")
        if not segment.owner:
            raise SegmentError(
                f"segment {name!r} is attached, not owned; use release()"
            )
        segment.shm.close()
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere; name is free
            pass
        del self._open[name]

    # ------------------------------------------------------------------
    # inspection / shutdown
    # ------------------------------------------------------------------
    def open_names(self) -> list[str]:
        return sorted(self._open)

    def is_open(self, name: str) -> bool:
        return name in self._open

    def shutdown(self) -> dict[str, Any]:
        """Close everything still open; owned segments are also unlinked.

        Returns ``{"closed", "unlinked", "leaked"}`` where ``leaked`` lists
        the names that were still open — under correct use the caller has
        already released/unlinked everything and the list is empty.
        """
        leaked = sorted(self._open)
        closed = 0
        unlinked = 0
        for segment in self._open.values():
            segment.shm.close()
            closed += 1
            if segment.owner:
                try:
                    segment.shm.unlink()
                except FileNotFoundError:
                    pass
                unlinked += 1
        self._open.clear()
        return {"closed": closed, "unlinked": unlinked, "leaked": leaked}
