"""Per-machine warm plane: publish datasets once, attach them everywhere.

A :class:`WarmPlane` lives in the publishing process (typically the query
server).  ``publish`` packs one :class:`~repro.data.datasets.SpatialDataset`
into five shared-memory segments — the ``(4, n)`` columnar object table
plus the four packed R*-tree arrays of
:func:`repro.index.bulk.pack_tree` — and returns a picklable
:class:`WarmDatasetSpec`.  Worker processes call :func:`attach_dataset`
with that spec: the columns and the per-node bounds arrays of the rebuilt
tree are zero-copy views over the shared pages, so attaching costs
milliseconds and no per-worker memory for the payload.

Attachments are cached per process (keyed by the columns segment name), so
a long-lived worker attaches each dataset at most once and every
subsequent request reuses the warm copy — pool rebuilds after faults
re-attach to the *existing* segments; nothing is ever re-published.

``shutdown`` unlinks everything the plane published and reports leaked
segments (anything published but still open), which callers treat as a
bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..data.datasets import SpatialDataset
from ..geometry import Rect
from ..geometry.kernels import RectColumns
from ..index.bulk import pack_tree, tree_from_packed
from ..obs import current
from ..query.hardness import ProblemInstance
from ..query.io import query_from_dict, query_to_dict
from .segments import DuplicateSegmentError, SegmentManager, SegmentSpec

__all__ = [
    "WarmDatasetSpec",
    "WarmInstanceSpec",
    "WarmPlane",
    "attach_dataset",
    "attach_instance",
    "process_manager",
]


@dataclass(frozen=True)
class WarmDatasetSpec:
    """Everything a worker needs to attach one published dataset."""

    name: str
    count: int
    workspace: tuple[float, float, float, float]
    #: ``(4, n)`` C-contiguous float64: rows are xmin / ymin / xmax / ymax
    columns: SegmentSpec
    tree_bounds: SegmentSpec
    tree_children: SegmentSpec
    tree_offsets: SegmentSpec
    tree_levels: SegmentSpec
    #: ``(max_entries, min_entries, reinsert_count, size)``
    tree_meta: tuple[int, int, int, int]

    def segment_specs(self) -> tuple[SegmentSpec, ...]:
        return (
            self.columns,
            self.tree_bounds,
            self.tree_children,
            self.tree_offsets,
            self.tree_levels,
        )


@dataclass(frozen=True)
class WarmInstanceSpec:
    """A whole problem instance by reference: query dict + dataset specs."""

    name: str
    query: dict[str, Any]
    datasets: tuple[WarmDatasetSpec, ...]


class WarmPlane:
    """Registry name → published shared-memory dataset, for one machine."""

    def __init__(self, manager: SegmentManager | None = None) -> None:
        self._manager = manager if manager is not None else SegmentManager()
        self._published: dict[str, WarmDatasetSpec] = {}
        #: publish operations actually performed (re-attach paths must not
        #: move this counter — the fault tests pin it)
        self.publishes = 0

    @property
    def published(self) -> dict[str, WarmDatasetSpec]:
        """Snapshot of the registry-name → spec mapping."""
        return dict(self._published)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish(self, name: str, dataset: SpatialDataset) -> WarmDatasetSpec:
        """Publish ``dataset`` under registry name ``name`` (exactly once)."""
        if name in self._published:
            raise DuplicateSegmentError(
                f"dataset {name!r} is already published on this plane"
            )
        obs = current()
        with obs.span("warm.publish"):
            columns = dataset.columns
            table = np.stack(
                [columns.xmin, columns.ymin, columns.xmax, columns.ymax]
            )
            packed = pack_tree(dataset.tree)
            # OS names come from the manager (pid + counter); the registry
            # name only tags the payload, so "a/b"-style names are fine
            published: list[SegmentSpec] = []
            try:
                specs = {
                    "columns": self._manager.publish(table),
                    "tree_bounds": self._manager.publish(packed["entry_bounds"]),
                    "tree_children": self._manager.publish(packed["entry_children"]),
                    "tree_offsets": self._manager.publish(packed["node_offsets"]),
                    "tree_levels": self._manager.publish(packed["node_levels"]),
                }
                published.extend(specs.values())
            except BaseException:
                for spec in published:
                    self._manager.unlink(spec.name)
                raise
        spec_out = WarmDatasetSpec(
            name=name,
            count=len(dataset),
            workspace=(
                dataset.workspace.xmin,
                dataset.workspace.ymin,
                dataset.workspace.xmax,
                dataset.workspace.ymax,
            ),
            tree_meta=tuple(int(value) for value in packed["meta"]),  # type: ignore[arg-type]
            **specs,
        )
        self._published[name] = spec_out
        self.publishes += 1
        obs.counter("warm.publishes").inc()
        return spec_out

    def ensure_published(self, name: str, dataset: SpatialDataset) -> WarmDatasetSpec:
        """Idempotent :meth:`publish` — the pool-rebuild entry point."""
        spec = self._published.get(name)
        if spec is not None:
            return spec
        return self.publish(name, dataset)

    def instance_spec(
        self,
        name: str,
        instance: ProblemInstance,
        labels: list[str] | None = None,
    ) -> WarmInstanceSpec:
        """Publish (idempotently) an instance's datasets; returns the spec.

        ``labels`` are the registry names for the member datasets and
        default to the ``{name}/{index}`` convention of
        :class:`~repro.service.registry.DatasetRegistry`.
        """
        if labels is None:
            labels = [f"{name}/{index}" for index in range(len(instance.datasets))]
        if len(labels) != len(instance.datasets):
            raise ValueError(
                f"{len(instance.datasets)} datasets but {len(labels)} labels"
            )
        members = tuple(
            self.ensure_published(label, dataset)
            for label, dataset in zip(labels, instance.datasets)
        )
        return WarmInstanceSpec(
            name=name, query=query_to_dict(instance.query), datasets=members
        )

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def shutdown(self) -> dict[str, Any]:
        """Unlink every published segment; returns the lifecycle report.

        ``leaked`` lists OS segment names that were still open beyond the
        plane's own publications — with disciplined use it is empty.
        """
        datasets = len(self._published)
        unlinked = 0
        for spec in self._published.values():
            for segment in spec.segment_specs():
                if self._manager.is_open(segment.name):
                    self._manager.unlink(segment.name)
                    unlinked += 1
        self._published.clear()
        report = self._manager.shutdown()
        report["unlinked"] += unlinked
        report["datasets"] = datasets
        return report


# ----------------------------------------------------------------------
# attach side (worker processes)
# ----------------------------------------------------------------------

#: the manager tracking this process's attachments
_PROCESS_MANAGER = SegmentManager()

#: columns-segment name → attached dataset, so long-lived workers attach
#: each published dataset at most once
_ATTACH_CACHE: dict[str, SpatialDataset] = {}


def process_manager() -> SegmentManager:
    """This process's default attach-side segment manager."""
    return _PROCESS_MANAGER


def attach_dataset(
    spec: WarmDatasetSpec, manager: SegmentManager | None = None
) -> SpatialDataset:
    """Materialise a published dataset from shared memory, zero-copy.

    With the default ``manager`` the result is cached per process; passing
    an explicit manager bypasses the cache (tests use this to exercise the
    attach path repeatedly).
    """
    cache = manager is None
    if cache and spec.columns.name in _ATTACH_CACHE:
        return _ATTACH_CACHE[spec.columns.name]
    active = _PROCESS_MANAGER if manager is None else manager
    obs = current()
    with obs.span("warm.attach"):
        table = active.attach(spec.columns)
        columns = RectColumns(table[0], table[1], table[2], table[3])
        rects = [Rect._make(row) for row in table.T.tolist()]
        tree = tree_from_packed(
            active.attach(spec.tree_bounds),
            active.attach(spec.tree_children),
            active.attach(spec.tree_offsets),
            active.attach(spec.tree_levels),
            spec.tree_meta,
            item_bounds=rects,
        )
        dataset = SpatialDataset(
            rects,
            name=spec.name,
            workspace=Rect(*spec.workspace),
            tree=tree,
            columns=columns,
        )
    obs.counter("warm.attaches").inc()
    if cache:
        _ATTACH_CACHE[spec.columns.name] = dataset
    return dataset


def attach_instance(spec: WarmInstanceSpec) -> ProblemInstance:
    """Rebuild a whole problem instance from its warm spec."""
    return ProblemInstance(
        query=query_from_dict(spec.query),
        datasets=[attach_dataset(member) for member in spec.datasets],
    )
