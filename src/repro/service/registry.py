"""Named dataset and instance registry with lazy loading and warm-up.

The server process owns one :class:`DatasetRegistry`; worker processes
rebuild an equivalent one from :meth:`DatasetRegistry.spec` (a picklable
``{kind, name, path}`` listing) so each worker loads a dataset at most
once and then serves every subsequent request from its warm copy — the
dispatch-overhead discipline that in-memory parallel joins need
(Tsitsigkos et al.).

Two kinds of entries:

* *datasets* — one ``.npz``/``.csv`` file (:mod:`repro.data.io`), usable
  as the relations of any ad-hoc query;
* *instances* — a persisted :class:`~repro.query.hardness.ProblemInstance`
  directory (:func:`repro.query.io.load_instance`), bundling datasets with
  their query graph for one-name solve requests.

Loading is lazy (a registration is a few strings) and cached; indexes are
rebuilt on first load.  :meth:`warm` forces loading plus touches the
R*-tree root and the columnar arrays so the first query pays no
index-build latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..data.datasets import SpatialDataset
from ..data.io import load_csv, load_npz
from ..query.hardness import ProblemInstance
from ..query.io import load_instance

__all__ = ["DatasetRegistry"]

#: file suffix → loader kind for :meth:`DatasetRegistry.register_path`
_SUFFIX_FORMATS = {".npz": "npz", ".csv": "csv"}


@dataclass
class _Entry:
    """One registration: where the payload lives and its cached value."""

    kind: str  # "npz" | "csv" | "instance" | "memory" | "warm"
    path: str | None = None
    value: Any = None  # SpatialDataset or ProblemInstance once loaded
    #: warm entries: the picklable WarmDatasetSpec / WarmInstanceSpec to
    #: attach from shared memory on first use
    payload: Any = None


class DatasetRegistry:
    """Name → lazily loaded dataset or problem instance."""

    def __init__(self) -> None:
        self._datasets: dict[str, _Entry] = {}
        self._instances: dict[str, _Entry] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_path(
        self, name: str, path: str | Path, format: str | None = None
    ) -> None:
        """Register a dataset file (``.npz``/``.csv``) under ``name``.

        The file is not read until the first :meth:`dataset` call, but its
        existence is checked now so typos fail at registration time.
        """
        path = Path(path)
        if format is None:
            format = _SUFFIX_FORMATS.get(path.suffix.lower())
            if format is None:
                raise ValueError(
                    f"cannot infer format of {path}; pass format='npz' or 'csv'"
                )
        if format not in ("npz", "csv"):
            raise ValueError(f"unknown dataset format {format!r}")
        if not path.is_file():
            raise FileNotFoundError(f"dataset file not found: {path}")
        self._datasets[name] = _Entry(kind=format, path=str(path))

    def register_dataset(self, name: str, dataset: SpatialDataset) -> None:
        """Register an in-memory dataset (no file backing; ships by pickle)."""
        self._datasets[name] = _Entry(kind="memory", value=dataset)

    def register_instance_dir(self, name: str, directory: str | Path) -> None:
        """Register a persisted instance directory under ``name``.

        The instance's datasets also become addressable as
        ``{name}/{index}`` once the instance is loaded.
        """
        directory = Path(directory)
        if not (directory / "instance.json").is_file():
            raise FileNotFoundError(f"no instance manifest under {directory}")
        self._instances[name] = _Entry(kind="instance", path=str(directory))

    def register_instance(self, name: str, instance: ProblemInstance) -> None:
        """Register an in-memory problem instance."""
        self._instances[name] = _Entry(kind="memory", value=instance)

    def register_warm_dataset(self, name: str, spec: Any) -> None:
        """Register a shared-memory dataset by its ``WarmDatasetSpec``.

        The dataset attaches (zero-copy) on first :meth:`dataset` call;
        warm entries survive :meth:`spec`/:meth:`from_spec`, which is how
        the server hands published segments to its pool workers.
        """
        self._datasets[name] = _Entry(kind="warm", payload=spec)

    def register_warm_instance(self, name: str, spec: Any) -> None:
        """Register a shared-memory instance by its ``WarmInstanceSpec``."""
        self._instances[name] = _Entry(kind="warm", payload=spec)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> SpatialDataset:
        """The dataset registered as ``name``, loading (and caching) it."""
        entry = self._datasets.get(name)
        if entry is None:
            raise KeyError(
                f"unknown dataset {name!r}; known: {sorted(self._datasets)}"
            )
        if entry.value is None:
            if entry.kind == "warm":
                from ..warm.plane import attach_dataset  # local: optional dep

                entry.value = attach_dataset(entry.payload)
            else:
                assert entry.path is not None
                if entry.kind == "npz":
                    entry.value = load_npz(entry.path)
                else:
                    entry.value = load_csv(entry.path, name=name)
        return entry.value

    def instance(self, name: str) -> ProblemInstance:
        """The problem instance registered as ``name``, loading it lazily."""
        entry = self._instances.get(name)
        if entry is None:
            raise KeyError(
                f"unknown instance {name!r}; known: {sorted(self._instances)}"
            )
        if entry.value is None:
            if entry.kind == "warm":
                from ..warm.plane import attach_instance  # local: optional dep

                entry.value = attach_instance(entry.payload)
            else:
                assert entry.path is not None
                entry.value = load_instance(entry.path)
            for index, dataset in enumerate(entry.value.datasets):
                self._datasets.setdefault(
                    f"{name}/{index}", _Entry(kind="memory", value=dataset)
                )
        return entry.value

    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    def instance_names(self) -> list[str]:
        return sorted(self._instances)

    def is_loaded(self, name: str) -> bool:
        """True when dataset ``name`` is already materialised in memory."""
        entry = self._datasets.get(name)
        return entry is not None and entry.value is not None

    # ------------------------------------------------------------------
    # warm-up and worker transfer
    # ------------------------------------------------------------------
    def warm(self, name: str | None = None) -> int:
        """Force-load entries and touch their indexes; returns objects warmed.

        ``None`` warms everything.  "Touching" means reading the R*-tree
        root MBR and building the columnar arrays, so the first real query
        hits a fully materialised index.
        """
        warmed = 0
        dataset_names = [name] if name in self._datasets else None
        instance_names = [name] if name in self._instances else None
        if name is not None and dataset_names is None and instance_names is None:
            raise KeyError(f"unknown dataset or instance {name!r}")
        for dataset_name in dataset_names or (
            list(self._datasets) if name is None else []
        ):
            warmed += _touch(self.dataset(dataset_name))
        for instance_name in instance_names or (
            list(self._instances) if name is None else []
        ):
            for dataset in self.instance(instance_name).datasets:
                warmed += _touch(dataset)
        return warmed

    def attach_warm(self) -> int:
        """Force-attach every warm entry; returns datasets materialised.

        Called by pool-worker initializers so the first request finds the
        shared-memory datasets already attached (attaching is cheap, but
        doing it during a deadline-bounded solve is still wasted budget).
        """
        attached = 0
        for name, entry in list(self._instances.items()):
            if entry.kind == "warm":
                attached += len(self.instance(name).datasets)
        for name, entry in list(self._datasets.items()):
            if entry.kind == "warm" and entry.value is None:
                self.dataset(name)
                attached += 1
        return attached

    def spec(self) -> dict[str, Any]:
        """A picklable description workers rebuild the registry from.

        Path-backed entries transfer as paths (workers re-load lazily from
        disk); warm entries transfer as their shared-memory specs (workers
        attach, never re-load).  Plain in-memory entries are listed by
        neither — callers ship those instances inline with the request.
        """
        return {
            "datasets": {
                name: {"kind": entry.kind, "path": entry.path, "payload": entry.payload}
                for name, entry in self._datasets.items()
                if entry.path is not None or entry.kind == "warm"
            },
            "instances": {
                name: {"kind": entry.kind, "path": entry.path, "payload": entry.payload}
                for name, entry in self._instances.items()
                if entry.path is not None or entry.kind == "warm"
            },
        }

    def has_path(self, name: str) -> bool:
        """True when dataset/instance ``name`` is file-backed (worker-loadable)."""
        entry = self._datasets.get(name) or self._instances.get(name)
        return entry is not None and entry.path is not None

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "DatasetRegistry":
        """Rebuild a lazy registry from :meth:`spec` (worker initializer)."""
        registry = cls()
        for name, entry in spec.get("datasets", {}).items():
            registry._datasets[name] = _Entry(
                kind=entry["kind"], path=entry["path"], payload=entry.get("payload")
            )
        for name, entry in spec.get("instances", {}).items():
            registry._instances[name] = _Entry(
                kind=entry["kind"], path=entry["path"], payload=entry.get("payload")
            )
        return registry


def _touch(dataset: SpatialDataset) -> int:
    """Materialise one dataset's query structures; returns 1."""
    _ = dataset.tree.root.mbr
    _ = dataset.columns
    return 1
