"""Versioned request/response schema of the join service.

One request or response is one JSON object on one line (JSON-lines over a
stream socket).  The schema follows the same discipline as the obs v1
event records (:mod:`repro.obs.events`): a closed set of operations, a
``v`` version field, strict type checking with booleans rejected where
integers are expected, and unknown *extra* fields tolerated for forward
compatibility while missing or mistyped *required* fields fail
:func:`validate_request`.

Requests share three base fields::

    {"v": 1, "op": "solve", "id": "req-17", ...}

Responses echo ``id`` and ``op`` and carry either ``"status": "ok"`` plus
an op-specific payload, or ``"status": "error"`` with a structured error::

    {"v": 1, "id": "req-17", "op": "solve", "status": "error",
     "error": {"code": "overloaded", "message": "...", "retryable": true}}

``retryable`` is the load-shedding contract: an ``overloaded`` error means
the request was never admitted and can be resent verbatim after a backoff.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_OPS",
    "SOLVE_ALGORITHMS",
    "ERROR_CODES",
    "validate_request",
    "ok_response",
    "error_response",
    "solve_request",
]

#: bump when the request/response layout changes incompatibly
PROTOCOL_VERSION = 1

#: heuristics a solve request may name (the anytime subset of the engine)
SOLVE_ALGORITHMS = frozenset({"ils", "gils", "sea", "isa"})

#: named query topologies accepted in a solve request's ``query.type``
QUERY_TYPES = frozenset({"chain", "clique", "cycle", "star"})

#: error code → is the request retryable verbatim?
ERROR_CODES: dict[str, bool] = {
    "bad_request": False,      # malformed or schema-invalid request
    "unknown_dataset": False,  # names a dataset/instance the registry lacks
    "overloaded": True,        # shed by admission control; retry after backoff
    "worker_crashed": True,    # pool died mid-job and the deadline ran out
    "timeout": True,           # worker exceeded deadline + grace (wedged)
    "internal": False,         # a genuine bug; retrying would hit it again
    "shutting_down": False,    # server is draining; connect elsewhere
    "shard_unavailable": True,  # every contacted fleet shard was lost
}

_FieldSpec = dict[str, tuple[type, ...]]

_BASE_FIELDS: _FieldSpec = {
    "v": (int,),
    "op": (str,),
    "id": (str,),
}

#: required payload fields (and accepted types) per operation
_OP_FIELDS: dict[str, _FieldSpec] = {
    "ping": {},
    "datasets": {},
    "stats": {},
    "shutdown": {},
    "register": {"name": (str,), "path": (str,)},
    "solve": {},  # structurally validated by _validate_solve below
}

REQUEST_OPS = frozenset(_OP_FIELDS)

#: optional solve fields and their accepted types
_SOLVE_OPTIONAL: _FieldSpec = {
    "deadline": (int, float),
    "max_iterations": (int, type(None)),
    "algorithm": (str,),
    "seed": (int,),
    "restarts": (int,),
    "cache": (bool,),
}


def _check_field(op: str, field: str, value: Any, accepted: tuple[type, ...]) -> None:
    bool_ok = bool in accepted
    if (isinstance(value, bool) and not bool_ok) or not isinstance(value, accepted):
        raise ValueError(f"{op} field {field!r} has invalid value {value!r}")


def _validate_query_spec(spec: Any) -> None:
    """A solve query is either a named topology or an explicit edge list."""
    if not isinstance(spec, dict):
        raise ValueError(f"solve field 'query' must be an object, got {spec!r}")
    if "type" in spec:
        if spec["type"] not in QUERY_TYPES:
            raise ValueError(
                f"unknown query type {spec['type']!r}; known: {sorted(QUERY_TYPES)}"
            )
        variables = spec.get("variables")
        if isinstance(variables, bool) or not isinstance(variables, int) or variables < 2:
            raise ValueError(
                f"query.variables must be an int >= 2, got {variables!r}"
            )
        return
    if "num_variables" in spec and "edges" in spec:
        # repro.query.io.query_from_dict format; structural errors surface
        # when the graph is rebuilt, with precise messages
        if not isinstance(spec["edges"], list):
            raise ValueError("query.edges must be a list of {i, j, predicate} objects")
        return
    raise ValueError(
        "solve query must carry either {'type', 'variables'} or "
        "{'num_variables', 'edges'}"
    )


def _validate_solve(record: Mapping[str, Any]) -> None:
    instance = record.get("instance")
    query = record.get("query")
    if instance is not None:
        if not isinstance(instance, str):
            raise ValueError(f"solve field 'instance' must be a string, got {instance!r}")
        if query is not None:
            raise ValueError("solve request carries both 'instance' and 'query'")
    else:
        _validate_query_spec(query)
        datasets = record.get("datasets")
        if not isinstance(datasets, list) or not all(
            isinstance(name, str) for name in datasets
        ):
            raise ValueError("solve field 'datasets' must be a list of dataset names")
    for field, accepted in _SOLVE_OPTIONAL.items():
        if field in record:
            _check_field("solve", field, record[field], accepted)
    deadline = record.get("deadline")
    if deadline is not None and deadline <= 0:
        raise ValueError(f"solve deadline must be positive, got {deadline!r}")
    iterations = record.get("max_iterations")
    if iterations is not None and iterations <= 0:
        raise ValueError(f"solve max_iterations must be positive, got {iterations!r}")
    algorithm = record.get("algorithm")
    if algorithm is not None and algorithm not in SOLVE_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(SOLVE_ALGORITHMS)}"
        )
    restarts = record.get("restarts")
    if restarts is not None and restarts < 1:
        raise ValueError(f"solve restarts must be >= 1, got {restarts!r}")


def validate_request(record: object) -> dict[str, Any]:
    """Check one request against the schema; returns it, raises ``ValueError``.

    Mirrors :func:`repro.obs.events.validate_event`: strict on required
    fields (booleans never pass as integers), tolerant of unknown extras.
    """
    if not isinstance(record, dict):
        raise ValueError(f"request must be an object, got {type(record).__name__}")
    version = record.get("v")
    if version != PROTOCOL_VERSION:
        raise ValueError(f"unsupported protocol version {version!r}")
    op = record.get("op")
    if op not in REQUEST_OPS:
        raise ValueError(f"unknown op {op!r}; known: {sorted(REQUEST_OPS)}")
    required = dict(_BASE_FIELDS)
    required.update(_OP_FIELDS[op])
    for field, accepted in required.items():
        if field not in record:
            raise ValueError(f"{op} request is missing field {field!r}")
        _check_field(op, field, record[field], accepted)
    if op == "solve":
        _validate_solve(record)
    return record


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def ok_response(request_id: str, op: str, **payload: Any) -> dict[str, Any]:
    """A success response echoing the request id."""
    record: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "status": "ok",
    }
    record.update(payload)
    return record


def error_response(
    request_id: str, op: str, code: str, message: str
) -> dict[str, Any]:
    """A structured error response; ``retryable`` is derived from ``code``."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}; known: {sorted(ERROR_CODES)}")
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "op": op,
        "status": "error",
        "error": {
            "code": code,
            "message": message,
            "retryable": ERROR_CODES[code],
        },
    }


def solve_request(
    request_id: str,
    *,
    instance: str | None = None,
    query: Mapping[str, Any] | None = None,
    datasets: list[str] | None = None,
    deadline: float | None = None,
    max_iterations: int | None = None,
    algorithm: str | None = None,
    seed: int = 0,
    restarts: int = 1,
    cache: bool = True,
) -> dict[str, Any]:
    """Build (and validate) one solve request."""
    record: dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "op": "solve",
        "id": request_id,
        "seed": seed,
        "restarts": restarts,
        "cache": cache,
    }
    if instance is not None:
        record["instance"] = instance
    if query is not None:
        record["query"] = dict(query)
    if datasets is not None:
        record["datasets"] = list(datasets)
    if deadline is not None:
        record["deadline"] = deadline
    if max_iterations is not None:
        record["max_iterations"] = max_iterations
    if algorithm is not None:
        record["algorithm"] = algorithm
    return validate_request(record)
