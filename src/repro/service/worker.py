"""Worker-side execution of solve jobs (everything here must pickle).

The server ships one :class:`SolveJob` per request into its
``ProcessPoolExecutor``.  Following the discipline of
:mod:`repro.core.parallel`, nothing live crosses the process boundary:
jobs carry dataset *names* (resolved against a per-worker
:class:`~repro.service.registry.DatasetRegistry` built once by the pool
initializer) and raw budget limits, never sockets, budgets or open
observations.  Only instances that exist purely in the server's memory
are shipped inline.

Workers keep every dataset they have loaded for the lifetime of the pool,
so a dataset is read from disk at most once per worker — the per-request
cost is the solve itself, not dispatch.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

from ..core.budget import Budget
from ..core.evaluator import QueryEvaluator
from ..core.parallel import CRASH_EXIT_CODE, parallel_restarts
from ..faults import SITE_SERVICE_JOB, FaultPlan, InjectedCrash, activate_plan, fault_point
from ..obs import Observation, export_state, observe
from ..query.graph import QueryGraph
from ..query.hardness import ProblemInstance
from ..query.io import query_from_dict
from .registry import DatasetRegistry

__all__ = ["SolveJob", "init_service_worker", "run_solve_job", "build_query"]

#: named topology builders accepted in a solve request's ``query.type``
_TOPOLOGIES = {
    "chain": QueryGraph.chain,
    "clique": QueryGraph.clique,
    "cycle": QueryGraph.cycle,
    "star": QueryGraph.star,
}


def build_query(spec: dict[str, Any]) -> QueryGraph:
    """A query graph from a request's query spec (named or explicit)."""
    if "type" in spec:
        return _TOPOLOGIES[spec["type"]](spec["variables"])
    return query_from_dict(spec)


@dataclass(frozen=True)
class SolveJob:
    """One picklable solve: where the data is, what to run, how long for."""

    #: registry name of a whole instance, or None when query+datasets used
    instance_name: str | None
    #: query spec dict (protocol format) when instance_name is None
    query: dict[str, Any] | None
    #: registry dataset names, one per query variable
    dataset_names: tuple[str, ...] | None
    #: inline instance for data only the server process holds
    inline_instance: ProblemInstance | None
    algorithm: str
    seed: int
    restarts: int
    time_limit: float | None
    max_iterations: int | None
    #: observe the solve and ship spans/metrics back to the server
    observe: bool = False
    #: how many times this job has already been re-dispatched after a fault
    attempt: int = 0
    #: server-side monotonic dispatch number — the ``service.job`` fault
    #: site's index, stable across re-dispatches of the same request
    fault_index: int = 0
    #: starting incumbent (requester numbering) from the cache's near-miss
    #: tier; seeds the search, which then can only improve on it
    warm_start: tuple[int, ...] | None = None


# Per-process state, set once by the pool initializer.
_WORKER_REGISTRY: DatasetRegistry | None = None
#: True only inside pool worker processes — decides whether an injected
#: crash may genuinely kill the process (thread executors share the
#: server's process, where exiting would take the whole service down)
_IN_POOL_WORKER = False


def init_service_worker(
    registry_spec: dict[str, Any], fault_plan: dict[str, Any] | None = None
) -> None:
    """Pool initializer: rebuild the lazy registry inside this worker.

    Warm (shared-memory) entries are attached eagerly — the attach is a
    few mmaps, and doing it here keeps the first deadline-bounded request
    as cheap as every later one.  Pool rebuilds after faults run this
    again with the same spec, so recovered workers re-attach to the same
    published segments.
    """
    global _WORKER_REGISTRY, _IN_POOL_WORKER
    _WORKER_REGISTRY = DatasetRegistry.from_spec(registry_spec)
    _WORKER_REGISTRY.attach_warm()
    _IN_POOL_WORKER = True
    activate_plan(FaultPlan.from_dict(fault_plan))


def _resolve_instance(
    job: SolveJob, registry: DatasetRegistry | None
) -> ProblemInstance:
    if job.inline_instance is not None:
        return job.inline_instance
    if registry is None:
        raise RuntimeError("service worker used before init_service_worker()")
    if job.instance_name is not None:
        return registry.instance(job.instance_name)
    assert job.query is not None and job.dataset_names is not None
    query = build_query(job.query)
    datasets = [registry.dataset(name) for name in job.dataset_names]
    return ProblemInstance(query=query, datasets=datasets)


#: registry-resolved instances keep one evaluator per (data, query) for the
#: worker's lifetime — building the evaluator was the last per-request
#: setup cost once datasets attach from shared memory.  The instance object
#: is stored alongside so a reloaded registry entry invalidates the cache.
_EVALUATOR_CACHE: dict[str, tuple[ProblemInstance, QueryEvaluator]] = {}
_EVALUATOR_CACHE_LIMIT = 32


def _evaluator_key(job: SolveJob) -> str | None:
    """Cache key for the job's evaluator; ``None`` for inline instances."""
    if job.inline_instance is not None:
        return None
    if job.instance_name is not None:
        return f"instance:{job.instance_name}"
    return "query:" + json.dumps(
        [list(job.dataset_names or ()), job.query], sort_keys=True
    )


def _evaluator_for(job: SolveJob, instance: ProblemInstance) -> QueryEvaluator:
    key = _evaluator_key(job)
    if key is None:
        return QueryEvaluator(instance)
    cached = _EVALUATOR_CACHE.get(key)
    if cached is not None and cached[0] is instance:
        return cached[1]
    evaluator = QueryEvaluator(instance)
    if len(_EVALUATOR_CACHE) >= _EVALUATOR_CACHE_LIMIT:
        _EVALUATOR_CACHE.clear()
    _EVALUATOR_CACHE[key] = (instance, evaluator)
    return evaluator


def solve_with_budget(
    instance: ProblemInstance, job: SolveJob, budget: Budget
) -> dict[str, Any]:
    """Run the anytime search under ``budget`` and render a plain payload.

    The heuristics are anytime, so deadline expiry *is* the graceful path:
    whatever incumbent exists when the budget runs out comes back, flagged
    approximate unless it satisfies every join condition.
    """
    result = parallel_restarts(
        instance,
        budget,
        seed=job.seed,
        heuristic=job.algorithm,
        restarts=job.restarts,
        workers=1,  # process parallelism belongs to the server's pool
        evaluator=_evaluator_for(job, instance),
        warm_start=job.warm_start,
    )
    return {
        "assignment": list(result.best_assignment),
        "violations": result.best_violations,
        "similarity": result.best_similarity,
        "exact": result.is_exact,
        "approximate": not result.is_exact,
        "iterations": result.iterations,
        "elapsed": result.elapsed,
        "algorithm": job.algorithm,
        "warm_started": job.warm_start is not None,
    }


def run_solve_job(
    job: SolveJob, registry: DatasetRegistry | None = None
) -> dict[str, Any]:
    """Execute one job in this worker; returns a picklable result payload.

    ``registry`` defaults to the per-process one installed by
    :func:`init_service_worker`; thread-executor servers pass their own.

    With ``job.observe`` the solve runs under a fresh per-request
    observation whose spans and metrics ship back under ``"obs"`` — the
    server replays them into its own trace exactly like
    :func:`~repro.core.parallel.parallel_restarts` replays member
    observations.  Observed jobs activate the ambient observation for the
    whole process, so servers only set ``observe`` when each worker runs
    one job at a time (the process-pool mode).

    The ``service.job`` fault site fires here, before any work: a crash
    fault kills this worker process for real (``os._exit``) so the server
    exercises the genuine ``BrokenProcessPool`` recovery path.  In thread
    executors the crash propagates as :class:`InjectedCrash` instead and
    is classified by the server like any pool break.
    """
    try:
        fault_point(SITE_SERVICE_JOB, index=job.fault_index, attempt=job.attempt)
    except InjectedCrash:
        if _IN_POOL_WORKER:
            os._exit(CRASH_EXIT_CODE)
        raise
    instance = _resolve_instance(job, registry or _WORKER_REGISTRY)
    budget = Budget(time_limit=job.time_limit, max_iterations=job.max_iterations)
    if not job.observe:
        return solve_with_budget(instance, job, budget)
    with observe(Observation()) as request_observation:
        with request_observation.span("service.solve"):
            payload = solve_with_budget(instance, job, budget)
    payload["obs"] = export_state(request_observation)
    return payload
