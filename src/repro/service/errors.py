"""Structured classification of service-side failures.

The server's dispatch path must never let an exception reach the socket
unclassified: the client's retry behaviour is driven entirely by the
``(code, retryable)`` pair in the error payload, so every failure mode
needs a deliberate mapping.  :func:`classify_exception` is that mapping —
and the repro-lint rule RL008 enforces that exception handlers in the
service (and the parallel supervisor) either re-raise or route through it,
so new failure modes cannot silently fall into a blanket ``internal``.

The classification contract:

``worker_crashed`` (retryable)
    The pool (or an injected fault) killed the process running the job.
    The request itself is fine; the server has either already rebuilt the
    pool or will on the next dispatch, so resending is expected to work.
``timeout`` (retryable)
    The worker exceeded deadline + grace.  The anytime budget normally
    returns an approximate answer *before* this fires, so hitting it means
    the worker was wedged; retrying reaches a fresh worker.
``internal`` (not retryable)
    A genuine bug — an unexpected exception type.  Resending the same
    request would deterministically hit the same bug, so clients must not
    spin on it.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass

from ..faults import InjectedCrash

__all__ = ["ClassifiedError", "classify_exception"]


@dataclass(frozen=True)
class ClassifiedError:
    """One failure, reduced to the protocol's error vocabulary."""

    code: str
    message: str

    @classmethod
    def of(cls, code: str, error: BaseException) -> "ClassifiedError":
        return cls(code=code, message=f"{type(error).__name__}: {error}")


def classify_exception(error: BaseException) -> ClassifiedError:
    """Map one exception from the solve path to a protocol error code."""
    if isinstance(error, (BrokenExecutor, InjectedCrash)):
        # BrokenExecutor covers BrokenProcessPool; InjectedCrash arrives
        # directly only from thread executors (pool workers os._exit)
        return ClassifiedError.of("worker_crashed", error)
    if isinstance(error, (asyncio.TimeoutError, TimeoutError)):
        return ClassifiedError("timeout", "solve worker timed out")
    # everything else — including an injected 'error' fault, which models
    # exactly this case — is a genuine bug
    return ClassifiedError.of("internal", error)
