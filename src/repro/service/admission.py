"""Admission control: bounded concurrency with per-request deadline budgets.

The server dispatches solves onto a fixed process pool; without a bound on
*admitted* work the executor queue grows without limit and every request's
effective deadline silently dies in the queue.  The controller enforces
the alternative contract: at most ``max_pending`` requests are in flight
(running or queued) at any moment, and everything beyond that is shed
immediately with a structured retryable error — the client's signal to
back off rather than time out.

Admission also owns deadline policy: requested deadlines are clamped into
``(0, max_deadline]`` (absent ones get ``default_deadline``), and each
admitted request carries a :class:`~repro.core.budget.Stopwatch` so the
dispatcher can subtract queue wait from the solve budget — the worker
receives only the *remaining* time, never the original deadline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.budget import Budget, Stopwatch

__all__ = ["AdmissionController", "Ticket", "MIN_SOLVE_SECONDS"]

#: floor on the time budget handed to a worker: even a request whose
#: deadline was consumed by queueing gets one short anytime run back
#: (graceful degradation returns *something*, flagged approximate)
MIN_SOLVE_SECONDS = 0.02


@dataclass
class Ticket:
    """One admitted request: its deadline and its queue-wait stopwatch."""

    deadline: float
    admitted: Stopwatch = field(default_factory=Stopwatch)

    def remaining(self) -> float:
        """Deadline seconds left, floored at :data:`MIN_SOLVE_SECONDS`."""
        return max(MIN_SOLVE_SECONDS, self.deadline - self.admitted.elapsed())

    def expired(self) -> bool:
        """Is the deadline effectively spent (nothing beyond the floor left)?

        :meth:`remaining` never reports less than the floor — graceful
        degradation always hands the worker *some* budget — so re-dispatch
        decisions (retry a crashed job or shed it?) must ask this instead.
        """
        return self.deadline - self.admitted.elapsed() <= MIN_SOLVE_SECONDS

    def budget(self, max_iterations: int | None = None) -> Budget:
        """A fresh solve budget over the remaining deadline."""
        return Budget(time_limit=self.remaining(), max_iterations=max_iterations)


class AdmissionController:
    """Bounded in-flight request count with load shedding.

    Parameters
    ----------
    max_pending:
        Requests admitted but not yet completed (running + queued).
        Arrivals beyond this are shed.
    default_deadline / max_deadline:
        Deadline policy in seconds; requests asking for more than
        ``max_deadline`` are clamped, not rejected (the paper's time
        threshold is a promise to answer *by* then, and a tighter promise
        still satisfies it).
    clock:
        Injectable time source for the tickets' stopwatches.
    """

    def __init__(
        self,
        max_pending: int = 16,
        default_deadline: float = 5.0,
        max_deadline: float = 60.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if default_deadline <= 0 or max_deadline <= 0:
            raise ValueError("deadlines must be positive")
        if default_deadline > max_deadline:
            raise ValueError(
                f"default deadline {default_deadline} exceeds maximum {max_deadline}"
            )
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self._clock = clock
        self._pending = 0
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def pending(self) -> int:
        """Requests currently admitted and not yet released."""
        return self._pending

    def clamp_deadline(self, requested: float | None) -> float:
        """The effective deadline for a request asking for ``requested``."""
        if requested is None:
            return self.default_deadline
        return min(float(requested), self.max_deadline)

    def try_admit(self, requested_deadline: float | None = None) -> Ticket | None:
        """Admit one request, or return ``None`` when it must be shed."""
        if self._pending >= self.max_pending:
            self.shed_total += 1
            return None
        self._pending += 1
        self.admitted_total += 1
        deadline = self.clamp_deadline(requested_deadline)
        if self._clock is not None:
            return Ticket(deadline=deadline, admitted=Stopwatch(self._clock))
        return Ticket(deadline=deadline)

    def release(self, ticket: Ticket) -> None:
        """Return one admitted request's slot (call exactly once per ticket)."""
        if self._pending <= 0:
            raise RuntimeError("release() without a matching try_admit()")
        self._pending -= 1

    def stats(self) -> dict[str, float]:
        """Counter snapshot for the server's ``stats`` op."""
        return {
            "pending": self._pending,
            "max_pending": self.max_pending,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "default_deadline": self.default_deadline,
            "max_deadline": self.max_deadline,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AdmissionController(pending={self._pending}/{self.max_pending}, "
            f"shed={self.shed_total})"
        )
