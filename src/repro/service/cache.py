"""LRU+TTL solution cache keyed by a canonical query signature.

Two solve requests deserve the same cached answer whenever their labelled
query graphs are *isomorphic*: the same datasets joined by the same
predicates, regardless of how the client numbered its variables.  A chain
``A–B–C`` submitted as variables ``(0,1,2)`` or ``(2,1,0)`` is one query.

:func:`canonical_query_key` computes a canonical serialisation of the
labelled graph plus the variable *order* that produced it, by colour
refinement (labels + degrees, iterated over neighbour multisets) followed
by a bounded brute-force minimisation inside the remaining colour classes.
When the ambiguity exceeds :data:`MAX_ORDERINGS` permutations, the
function falls back to a deterministic-but-not-canonical order — the key
is then still *sound* (equal keys always describe isomorphic queries,
because the key serialises the full relabelled graph) but isomorphic
requests submitted under different numberings may miss.

The cache stores assignments in canonical variable order, so a hit under a
different numbering is translated back through the requester's order — the
cached tuple is never returned raw.

Expiry uses an injectable monotonic clock (defaulting to a
:class:`~repro.core.budget.Stopwatch`) so tests simulate the TTL exactly
like they simulate budgets.
"""

from __future__ import annotations

import itertools
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..core.budget import Stopwatch
from ..query.graph import QueryGraph

__all__ = [
    "MAX_ORDERINGS",
    "canonical_query_key",
    "solve_cache_key",
    "CacheEntry",
    "SolutionCache",
]

#: cap on permutations tried when colour refinement leaves ambiguity
MAX_ORDERINGS = 720


def _predicate_token(predicate: Any) -> str:
    """A stable string for one predicate, including parameters."""
    distance = getattr(predicate, "distance", None)
    if distance is not None:
        return f"{predicate.name}:{distance!r}"
    return str(predicate.name)


def _refine_colors(query: QueryGraph, labels: Sequence[str]) -> list[int]:
    """Stable colour classes from labels, degrees and neighbour multisets."""
    n = query.num_variables
    signatures: list[Any] = [(labels[i], query.degree(i)) for i in range(n)]
    ranking = {s: r for r, s in enumerate(sorted(set(signatures)))}
    colors = [ranking[s] for s in signatures]
    for _ in range(n):
        signatures = [
            (
                colors[i],
                tuple(
                    sorted(
                        (_predicate_token(predicate), colors[j])
                        for j, predicate in query.neighbors(i).items()
                    )
                ),
            )
            for i in range(n)
        ]
        ranking = {s: r for r, s in enumerate(sorted(set(signatures)))}
        refined = [ranking[s] for s in signatures]
        if refined == colors:
            break
        colors = refined
    return colors


def _serialize(
    query: QueryGraph, labels: Sequence[str], order: Sequence[int]
) -> str:
    """The labelled graph relabelled through ``order``, as a JSON string.

    ``order[k]`` is the original variable at canonical position ``k``.
    Equal serialisations imply isomorphism: the composed permutation of the
    two orders maps one query onto the other, labels and predicates intact.
    """
    position = {variable: k for k, variable in enumerate(order)}
    edges = []
    for i, j, _predicate in query.edges():
        a, b = position[i], position[j]
        if a > b:
            a, b = b, a
        # predicate oriented from canonical position a to canonical position b
        oriented = query.predicate(order[a], order[b])
        edges.append((a, b, _predicate_token(oriented)))
    payload = {
        "labels": [labels[variable] for variable in order],
        "edges": sorted(edges),
    }
    return json.dumps(payload, separators=(",", ":"))


def canonical_query_key(
    query: QueryGraph,
    labels: Sequence[str],
    max_orderings: int = MAX_ORDERINGS,
) -> tuple[str, tuple[int, ...]]:
    """``(signature, order)`` for a labelled query graph.

    ``signature`` is identical for isomorphic ``(query, labels)`` pairs
    (within the :data:`MAX_ORDERINGS` search bound) and never identical for
    non-isomorphic ones.  ``order`` maps canonical position → original
    variable; cached assignments are stored in canonical order and
    translated through it on both store and hit.
    """
    if len(labels) != query.num_variables:
        raise ValueError(
            f"{query.num_variables} variables but {len(labels)} labels"
        )
    colors = _refine_colors(query, labels)
    groups: dict[int, list[int]] = {}
    for variable, color in enumerate(colors):
        groups.setdefault(color, []).append(variable)
    ordered_groups = [groups[color] for color in sorted(groups)]
    ambiguity = 1
    for group in ordered_groups:
        for k in range(2, len(group) + 1):
            ambiguity *= k
            if ambiguity > max_orderings:
                break
        if ambiguity > max_orderings:
            break
    if ambiguity > max_orderings:
        # sound fallback: deterministic order, exact-resubmission hits only
        order = tuple(
            variable
            for group in ordered_groups
            for variable in group
        )
        return _serialize(query, labels, order), order
    best_order: tuple[int, ...] | None = None
    best_signature: str | None = None
    for arrangement in itertools.product(
        *(itertools.permutations(group) for group in ordered_groups)
    ):
        order = tuple(itertools.chain.from_iterable(arrangement))
        signature = _serialize(query, labels, order)
        if best_signature is None or signature < best_signature:
            best_signature = signature
            best_order = order
    assert best_signature is not None and best_order is not None
    return best_signature, best_order


def solve_cache_key(
    signature: str,
    algorithm: str,
    seed: int,
    restarts: int,
    deadline: float | None,
    max_iterations: int | None,
) -> str:
    """The full cache key: query signature plus every result-shaping knob."""
    return json.dumps(
        {
            "q": signature,
            "alg": algorithm,
            "seed": seed,
            "restarts": restarts,
            "deadline": deadline,
            "iters": max_iterations,
        },
        separators=(",", ":"),
        sort_keys=True,
    )


@dataclass
class CacheEntry:
    """One cached solve outcome, assignment in canonical variable order."""

    assignment: tuple[int, ...]
    violations: int
    similarity: float
    iterations: int
    elapsed: float
    algorithm: str
    stored_at: float = 0.0
    hits: int = field(default=0)
    #: canonical query signature, for the near-miss warm-start tier
    signature: str = ""

    def assignment_for(self, order: Sequence[int]) -> list[int]:
        """The assignment translated into a requester's variable numbering.

        ``order[k]`` is the requester's variable at canonical position
        ``k``; position ``k`` of the cached assignment therefore lands on
        requester variable ``order[k]``.
        """
        assignment = [0] * len(self.assignment)
        for position, variable in enumerate(order):
            assignment[variable] = self.assignment[position]
        return assignment

    @classmethod
    def from_result(
        cls,
        assignment: Sequence[int],
        order: Sequence[int],
        violations: int,
        similarity: float,
        iterations: int,
        elapsed: float,
        algorithm: str,
        signature: str = "",
    ) -> "CacheEntry":
        """Build an entry from a result in the requester's numbering."""
        canonical = tuple(assignment[variable] for variable in order)
        return cls(
            assignment=canonical,
            violations=violations,
            similarity=similarity,
            iterations=iterations,
            elapsed=elapsed,
            algorithm=algorithm,
            signature=signature,
        )


class SolutionCache:
    """An LRU cache with optional TTL expiry and hit/miss accounting.

    ``ttl`` is in clock seconds (``None`` = no expiry); ``clock`` is any
    monotonic ``() -> float`` — tests inject a fake, production uses a
    :class:`~repro.core.budget.Stopwatch` started at construction.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock if clock is not None else Stopwatch().elapsed
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        #: signature → keys of live entries carrying it (near-miss tier)
        self._by_signature: dict[str, set[str]] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0
        self.near_hits = 0
        self.near_misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _forget_signature(self, key: str, entry: CacheEntry) -> None:
        keys = self._by_signature.get(entry.signature)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_signature[entry.signature]

    def _expired(self, entry: CacheEntry) -> bool:
        return self.ttl is not None and self._clock() - entry.stored_at >= self.ttl

    def get(self, key: str) -> CacheEntry | None:
        """The live entry under ``key`` or ``None`` (expired counts as miss)."""
        entry = self._entries.get(key)
        if entry is not None and self._expired(entry):
            del self._entries[key]
            self._forget_signature(key, entry)
            self.expirations += 1
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        entry.hits += 1
        return entry

    def get_near(self, signature: str) -> CacheEntry | None:
        """The best live entry for an isomorphic query, regardless of knobs.

        This is the warm-start tier: an exact miss whose canonical
        *signature* matches a cached solve (same labelled query graph up to
        variable renumbering, but a different seed / budget / algorithm)
        returns that entry so its assignment can seed the new search.  Best
        = fewest violations, ties to the most recently stored.  Tracked by
        ``near_hits``/``near_misses``, separate from the exact counters.
        """
        best_entry: CacheEntry | None = None
        for key in sorted(self._by_signature.get(signature, ())):
            entry = self._entries.get(key)
            if entry is None:
                continue
            if self._expired(entry):
                del self._entries[key]
                self._forget_signature(key, entry)
                self.expirations += 1
                continue
            if (
                best_entry is None
                or entry.violations < best_entry.violations
                or (
                    entry.violations == best_entry.violations
                    and entry.stored_at > best_entry.stored_at
                )
            ):
                best_entry = entry
        if best_entry is None:
            self.near_misses += 1
            return None
        self.near_hits += 1
        return best_entry

    def put(self, key: str, entry: CacheEntry) -> None:
        """Insert (or refresh) ``entry`` under ``key``; evicts the LRU tail."""
        entry.stored_at = self._clock()
        previous = self._entries.get(key)
        if previous is not None:
            self._forget_signature(key, previous)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        if entry.signature:
            self._by_signature.setdefault(entry.signature, set()).add(key)
        while len(self._entries) > self.capacity:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._forget_signature(evicted_key, evicted)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
        self._by_signature.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot for the server's ``stats`` op."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
            "near_hits": self.near_hits,
            "near_misses": self.near_misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SolutionCache(size={len(self)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
