"""Asyncio JSON-lines join server with caching and admission control.

One :class:`JoinServer` owns the four service pieces and wires them to the
engine:

* a :class:`~repro.service.registry.DatasetRegistry` naming the data,
* a :class:`~repro.service.cache.SolutionCache` keyed by canonical query
  signature (isomorphic requests hit),
* an :class:`~repro.service.admission.AdmissionController` bounding
  in-flight work and clamping deadlines,
* an executor pool running :func:`~repro.service.worker.run_solve_job`
  (the anytime :func:`~repro.core.parallel.parallel_restarts` path).

The event loop itself never solves anything: a connection handler
validates, consults the cache, asks for admission, and awaits the
executor.  Deadline expiry is the *graceful* path — the anytime search
returns its incumbent flagged ``"approximate": true`` — and overload is a
structured shed (``"overloaded"``, retryable), never a dropped connection.

Observability threads through the ambient observation: every request
emits a ``request`` event (the trace-compatible JSONL request log when
the observation sinks to a file), ``service.*`` counters and the
``service.queue.depth`` gauge track the flow, and worker-side
``service.solve`` spans are replayed into the server's trace via the
cross-process machinery in :mod:`repro.obs.aggregate`.
"""

from __future__ import annotations

import asyncio
import functools
import json
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

from ..core.budget import Stopwatch
from ..faults import FaultPlan, activate_plan
from ..obs import current, merge_states, replay_into
from ..query.hardness import ProblemInstance
from ..warm.plane import WarmPlane
from .admission import AdmissionController
from .cache import CacheEntry, SolutionCache, canonical_query_key, solve_cache_key
from .errors import classify_exception
from .protocol import (
    PROTOCOL_VERSION,
    error_response,
    ok_response,
    validate_request,
)
from .registry import DatasetRegistry
from .worker import SolveJob, build_query, init_service_worker, run_solve_job

__all__ = ["JoinServer"]

#: seconds of grace past a request's time budget before the server stops
#: waiting on a worker and reports a retryable ``timeout`` error (a
#: crashed/hung worker must not wedge the connection forever)
WORKER_GRACE_SECONDS = 30.0

#: re-dispatches one request may consume after worker crashes; the
#: remaining deadline is the real budget, this only bounds pathological
#: crash loops inside a long deadline
MAX_JOB_RETRIES = 3


class JoinServer:
    """Deadline-driven multiway-join query service.

    Parameters
    ----------
    registry:
        The named datasets/instances this server may solve over.
    host / port:
        Listening address; port ``0`` picks a free one (read
        :attr:`address` after :meth:`start`).
    workers / executor:
        Pool size and kind.  ``"process"`` (the default) rebuilds the
        registry per worker via :func:`init_service_worker` and replays
        worker observations; ``"thread"`` shares this process's registry —
        handy for tests and tiny in-memory datasets, but solves then
        compete for the GIL and per-request solve spans are disabled.
    max_pending / default_deadline / max_deadline:
        Admission policy (see :class:`AdmissionController`).
    cache_capacity / cache_ttl:
        Solution cache sizing; capacity ``0`` disables caching entirely.
    warm:
        Publish registry datasets into shared memory so process workers
        attach instead of re-loading (defaults to on for the process
        executor, off for threads, which already share this process's
        registry).  Pool rebuilds after crashes re-attach to the same
        segments; :meth:`stop` unlinks everything and records the
        lifecycle report in :attr:`warm_report`.
    default_algorithm:
        Heuristic used when a solve request names none.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` activated in every
        worker (and, for thread executors, in this process) — the chaos
        switchboard behind ``serve --fault-plan``.  ``None`` (the
        default) injects nothing.
    """

    def __init__(
        self,
        registry: DatasetRegistry,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        executor: str = "process",
        max_pending: int = 16,
        default_deadline: float = 5.0,
        max_deadline: float = 60.0,
        cache_capacity: int = 256,
        cache_ttl: float | None = None,
        warm: bool | None = None,
        default_algorithm: str = "gils",
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in ("process", "thread"):
            raise ValueError(f"executor must be 'process' or 'thread', got {executor!r}")
        self.registry = registry
        self._host = host
        self._port = port
        self.workers = workers
        self.executor_kind = executor
        self.admission = AdmissionController(
            max_pending=max_pending,
            default_deadline=default_deadline,
            max_deadline=max_deadline,
        )
        self.cache: SolutionCache | None = (
            SolutionCache(capacity=cache_capacity, ttl=cache_ttl)
            if cache_capacity > 0
            else None
        )
        self.warm = (executor == "process") if warm is None else bool(warm)
        self.default_algorithm = default_algorithm
        self.fault_plan = fault_plan if (fault_plan is not None and fault_plan) else None
        self.requests_total = 0
        self.errors_total = 0
        self.pool_rebuilds = 0
        self.jobs_retried = 0
        #: request classification for the cross-request incumbent tier
        self.warm_exact_hits = 0
        self.warm_starts = 0
        self.warm_cold = 0
        #: shared-memory plane, created with the first process pool
        self._warm_plane: WarmPlane | None = None
        #: segment lifecycle report from the plane, filled by :meth:`stop`
        self.warm_report: dict[str, Any] | None = None
        #: monotonic dispatch counter: the ``service.job`` fault index
        self._jobs_dispatched = 0
        self._previous_plan: FaultPlan | None = None
        self._executor: Executor | None = None
        #: names shipped to process workers at pool creation; anything
        #: registered later (or memory-only) is solved from an inline copy
        self._worker_names: set[str] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown: asyncio.Event | None = None
        self._stopped = False
        self._writers: set[asyncio.StreamWriter] = set()
        self._connections: set[asyncio.Task[None]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        return self._host, self._port

    def _build_process_executor(self) -> ProcessPoolExecutor:
        spec = self.registry.spec()
        if self.warm:
            spec = self._overlay_warm(spec)
        self._worker_names = set(spec["datasets"]) | set(spec["instances"])
        plan_payload = self.fault_plan.to_dict() if self.fault_plan else None
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=init_service_worker,
            initargs=(spec, plan_payload),
        )

    def _overlay_warm(self, spec: dict[str, Any]) -> dict[str, Any]:
        """Swap loadable registry entries for shared-memory warm specs.

        Instances publish first so their member datasets land under the
        registry's ``{name}/{index}`` labels; standalone datasets publish
        under their own names.  ``ensure_published`` is idempotent, so a
        pool rebuild after a crash ships the *same* specs again and the
        fresh workers re-attach — nothing is ever re-published (the fault
        tests pin the plane's publish counter across rebuilds).
        """
        if self._warm_plane is None:
            self._warm_plane = WarmPlane()
        plane = self._warm_plane
        for name in self.registry.instance_names():
            warm = plane.instance_spec(name, self.registry.instance(name))
            spec["instances"][name] = {"kind": "warm", "path": None, "payload": warm}
            for index, member in enumerate(warm.datasets):
                spec["datasets"][f"{name}/{index}"] = {
                    "kind": "warm",
                    "path": None,
                    "payload": member,
                }
        for name in self.registry.dataset_names():
            listed = spec["datasets"].get(name)
            if listed is not None and listed["kind"] == "warm":
                continue
            member = plane.ensure_published(name, self.registry.dataset(name))
            spec["datasets"][name] = {"kind": "warm", "path": None, "payload": member}
        return spec

    async def start(self) -> None:
        """Warm the registry, spin up the pool, and start listening."""
        self._stopped = False
        # registry warming and pool construction read datasets off disk;
        # keep that I/O off the event loop even during startup
        await asyncio.to_thread(self.registry.warm)
        if self._executor is None:
            if self.executor_kind == "process":
                self._executor = await asyncio.to_thread(
                    self._build_process_executor
                )
            else:
                self._worker_names = None
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
                if self.fault_plan is not None:
                    # thread workers share this process; the plan is
                    # ambient.  A plan-less server must NOT touch the
                    # global slot — it would deactivate a chaos plan some
                    # other component (e.g. the fleet router) installed.
                    self._previous_plan = activate_plan(self.fault_plan)
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        sockets = self._server.sockets or ()
        if sockets:
            self._port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Close the listener, drop open connections, shut the pool down.

        Explicitly idempotent: a second ``stop()`` (e.g. a fleet handle
        tearing down after ``stop_shard`` already killed this server) is
        a no-op rather than re-walking half-released resources.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            if self.executor_kind == "thread" and self.fault_plan is not None:
                activate_plan(self._previous_plan)
                self._previous_plan = None
        if self._warm_plane is not None:
            # workers are gone; unlink every published segment and keep
            # the lifecycle report (tests assert ``leaked == []``)
            self.warm_report = self._warm_plane.shutdown()
            self._warm_plane = None

    async def wait_for_shutdown(self) -> None:
        """Block until a ``shutdown`` request arrives (after :meth:`start`)."""
        assert self._shutdown is not None
        await self._shutdown.wait()

    async def serve_until_shutdown(self) -> None:
        """Start, then block until a ``shutdown`` request arrives."""
        await self.start()
        try:
            await self.wait_for_shutdown()
        finally:
            await self.stop()

    def run(self) -> None:
        """Synchronous convenience wrapper around :meth:`serve_until_shutdown`."""
        asyncio.run(self.serve_until_shutdown())

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.CancelledError):
                    # cancellation only arrives at teardown; finish cleanly
                    # so the stream protocol does not log a spurious error
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                payload = json.dumps(response, sort_keys=True) + "\n"
                try:
                    writer.write(payload.encode("utf-8"))
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(self, line: bytes) -> dict[str, Any]:
        """One request line → one response record (never raises)."""
        obs = current()
        stopwatch = Stopwatch()
        self.requests_total += 1
        obs.counter("service.requests").inc()
        request_id, op = "?", "?"
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            response = error_response(request_id, op, "bad_request", f"invalid JSON: {error}")
            self._finish(obs, op, response, stopwatch)
            return response
        if isinstance(record, dict):
            raw_id, raw_op = record.get("id"), record.get("op")
            request_id = raw_id if isinstance(raw_id, str) else "?"
            op = raw_op if isinstance(raw_op, str) else "?"
        try:
            validate_request(record)
        except ValueError as error:
            response = error_response(request_id, op, "bad_request", str(error))
            self._finish(obs, op, response, stopwatch)
            return response
        if self._shutdown is not None and self._shutdown.is_set():
            response = error_response(
                request_id, op, "shutting_down", "server is draining"
            )
            self._finish(obs, op, response, stopwatch)
            return response
        try:
            response = await self._dispatch(record, request_id, op)
        except Exception as error:  # noqa: BLE001 - connection must survive
            classified = classify_exception(error)
            response = error_response(
                request_id, op, classified.code, classified.message
            )
        self._finish(obs, op, response, stopwatch)
        return response

    def _finish(
        self, obs: Any, op: str, response: dict[str, Any], stopwatch: Stopwatch
    ) -> None:
        """Request accounting: latency histogram + ``request`` log event."""
        status = response.get("status", "error")
        if status != "ok":
            self.errors_total += 1
        elapsed = stopwatch.elapsed()
        obs.histogram("service.latency").observe(elapsed)
        obs.event("request", op=op, status=str(status), elapsed=elapsed)

    async def _dispatch(
        self, record: dict[str, Any], request_id: str, op: str
    ) -> dict[str, Any]:
        if op == "ping":
            return ok_response(request_id, op, version=PROTOCOL_VERSION)
        if op == "datasets":
            return ok_response(
                request_id,
                op,
                datasets=self.registry.dataset_names(),
                instances=self.registry.instance_names(),
            )
        if op == "stats":
            return ok_response(request_id, op, **self.stats())
        if op == "register":
            return self._handle_register(record, request_id)
        if op == "shutdown":
            assert self._shutdown is not None
            self._shutdown.set()
            return ok_response(request_id, op, stopping=True)
        assert op == "solve"
        return await self._handle_solve(record, request_id)

    def stats(self) -> dict[str, Any]:
        """Live service counters for the ``stats`` op (and tests)."""
        return {
            "requests_total": self.requests_total,
            "errors_total": self.errors_total,
            "workers": self.workers,
            "executor": self.executor_kind,
            "pool_rebuilds": self.pool_rebuilds,
            "jobs_retried": self.jobs_retried,
            "admission": self.admission.stats(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "warm": {
                "enabled": self.warm,
                "exact_hits": self.warm_exact_hits,
                "warm_starts": self.warm_starts,
                "cold": self.warm_cold,
                "published_datasets": (
                    len(self._warm_plane.published)
                    if self._warm_plane is not None
                    else 0
                ),
            },
        }

    def _handle_register(
        self, record: dict[str, Any], request_id: str
    ) -> dict[str, Any]:
        """Register a dataset file or instance directory by path."""
        name, path = record["name"], record["path"]
        try:
            from pathlib import Path

            if (Path(path) / "instance.json").is_file():
                self.registry.register_instance_dir(name, path)
                kind = "instance"
            else:
                self.registry.register_path(name, path)
                kind = "dataset"
        except (FileNotFoundError, ValueError) as error:
            return error_response(request_id, "register", "bad_request", str(error))
        return ok_response(request_id, "register", name=name, kind=kind)

    # ------------------------------------------------------------------
    # solve
    # ------------------------------------------------------------------
    async def _handle_solve(
        self, record: dict[str, Any], request_id: str
    ) -> dict[str, Any]:
        obs = current()
        algorithm = record.get("algorithm", self.default_algorithm)
        seed = record.get("seed", 0)
        restarts = record.get("restarts", 1)
        max_iterations = record.get("max_iterations")
        deadline = self.admission.clamp_deadline(record.get("deadline"))
        use_cache = bool(record.get("cache", True)) and self.cache is not None

        # resolve the query graph and the dataset labels that key the cache
        instance_name = record.get("instance")
        try:
            if instance_name is not None:
                # a cold registry entry loads from disk: off the loop
                instance = await asyncio.to_thread(
                    self.registry.instance, instance_name
                )
                query = instance.query
                labels = [
                    f"{instance_name}/{index}"
                    for index in range(query.num_variables)
                ]
                dataset_names: tuple[str, ...] | None = None
            else:
                query = build_query(record["query"])
                names = record["datasets"]
                if len(names) != query.num_variables:
                    raise ValueError(
                        f"query has {query.num_variables} variables but "
                        f"{len(names)} datasets were named"
                    )
                known = set(self.registry.dataset_names())
                missing = [name for name in names if name not in known]
                if missing:
                    raise KeyError(
                        f"unknown datasets {missing}; known: {sorted(known)}"
                    )
                labels = list(names)
                dataset_names = tuple(names)
        except KeyError as error:
            message = str(error.args[0]) if error.args else str(error)
            return error_response(request_id, "solve", "unknown_dataset", message)
        except ValueError as error:
            return error_response(request_id, "solve", "bad_request", str(error))

        # cache lookup under the canonical signature
        cache_key: str | None = None
        signature = ""
        order: tuple[int, ...] = tuple(range(query.num_variables))
        warm_start: tuple[int, ...] | None = None
        if use_cache:
            signature, order = canonical_query_key(query, labels)
            cache_key = solve_cache_key(
                signature, algorithm, seed, restarts, deadline, max_iterations
            )
            assert self.cache is not None
            entry = self.cache.get(cache_key)
            if entry is not None:
                obs.counter("service.cache.hit").inc()
                obs.counter("service.warm.exact_hit").inc()
                self.warm_exact_hits += 1
                return ok_response(
                    request_id,
                    "solve",
                    cached=True,
                    assignment=entry.assignment_for(order),
                    violations=entry.violations,
                    similarity=entry.similarity,
                    exact=entry.violations == 0,
                    approximate=entry.violations != 0,
                    iterations=entry.iterations,
                    elapsed=entry.elapsed,
                    algorithm=entry.algorithm,
                    seed=seed,
                    restarts=restarts,
                )
            obs.counter("service.cache.miss").inc()
            # near-miss tier: an isomorphic query solved under different
            # knobs seeds this solve's search with its best assignment
            near = self.cache.get_near(signature)
            if near is not None:
                warm_start = tuple(near.assignment_for(order))

        # admission: bounded in-flight work, shed the rest
        ticket = self.admission.try_admit(deadline)
        if ticket is None:
            obs.counter("service.shed").inc()
            obs.gauge("service.queue.depth").set(self.admission.pending)
            return error_response(
                request_id,
                "solve",
                "overloaded",
                f"{self.admission.pending} requests already in flight; retry later",
            )
        obs.gauge("service.queue.depth").set(self.admission.pending)
        # admitted: classify the dispatch for the warm-start vocabulary
        if warm_start is not None:
            obs.counter("service.warm.start").inc()
            self.warm_starts += 1
        else:
            obs.counter("service.warm.cold").inc()
            self.warm_cold += 1
        # one fault index per request, stable across re-dispatches — a
        # "crash every N-th job" plan counts requests, not retries
        fault_index = self._jobs_dispatched
        self._jobs_dispatched += 1
        attempt = 0
        try:
            while True:
                executor_used = self._executor
                try:
                    # inline payloads may load datasets from disk
                    job = await asyncio.to_thread(
                        self._build_job,
                        record,
                        instance_name,
                        dataset_names,
                        algorithm=algorithm,
                        seed=seed,
                        restarts=restarts,
                        time_limit=ticket.remaining(),
                        max_iterations=max_iterations,
                        observe_solve=(
                            self.executor_kind == "process"
                            and getattr(obs, "enabled", False)
                        ),
                        attempt=attempt,
                        fault_index=fault_index,
                        warm_start=warm_start,
                    )
                    payload = await self._run_job(job, timeout=ticket.remaining())
                    break
                except Exception as error:  # noqa: BLE001 - every solve failure is classified
                    classified = classify_exception(error)
                    if classified.code != "worker_crashed":
                        return error_response(
                            request_id, "solve", classified.code, classified.message
                        )
                    obs.counter("faults.crashes").inc()
                    # pool rebuild republishes warm segments (file/shm I/O)
                    await asyncio.to_thread(self._recover_executor, executor_used)
                    attempt += 1
                    if ticket.expired() or attempt > MAX_JOB_RETRIES:
                        # the deadline (or the retry bound) can no longer be
                        # met: shed with the retryable crash code
                        return error_response(
                            request_id,
                            "solve",
                            "worker_crashed",
                            f"worker crashed {attempt}× and the deadline "
                            "cannot be met; retry",
                        )
                    self.jobs_retried += 1
                    obs.counter("faults.retries").inc()
        finally:
            self.admission.release(ticket)
            obs.gauge("service.queue.depth").set(self.admission.pending)

        worker_obs = payload.pop("obs", None)
        if worker_obs is not None and getattr(obs, "enabled", False):
            replay_into(obs, merge_states([worker_obs]))
        if payload["approximate"]:
            obs.counter("service.approximate").inc()
        if use_cache and cache_key is not None:
            assert self.cache is not None
            self.cache.put(
                cache_key,
                CacheEntry.from_result(
                    payload["assignment"],
                    order,
                    violations=payload["violations"],
                    similarity=payload["similarity"],
                    iterations=payload["iterations"],
                    elapsed=payload["elapsed"],
                    algorithm=payload["algorithm"],
                    signature=signature,
                ),
            )
        return ok_response(
            request_id,
            "solve",
            cached=False,
            seed=seed,
            restarts=restarts,
            recovered=attempt > 0,
            **payload,
        )

    def _recover_executor(self, executor_used: Executor | None) -> None:
        """Rebuild the process pool after a crash broke it.

        Concurrent in-flight jobs all observe the same break; only the
        first handler to notice (its captured executor is still the
        installed one — handlers run on one event-loop thread, so the
        check-and-swap cannot race) pays for the rebuild, the rest simply
        re-dispatch onto the fresh pool.  Thread executors survive crashes
        (an injected crash propagates as an exception), so there is
        nothing to rebuild.
        """
        if self.executor_kind != "process":
            return
        if executor_used is None or executor_used is not self._executor:
            return
        executor_used.shutdown(wait=False, cancel_futures=True)
        self._executor = self._build_process_executor()
        self.pool_rebuilds += 1
        current().counter("faults.rebuilds").inc()

    def _build_job(
        self,
        record: dict[str, Any],
        instance_name: str | None,
        dataset_names: tuple[str, ...] | None,
        *,
        algorithm: str,
        seed: int,
        restarts: int,
        time_limit: float,
        max_iterations: int | None,
        observe_solve: bool,
        attempt: int = 0,
        fault_index: int = 0,
        warm_start: tuple[int, ...] | None = None,
    ) -> SolveJob:
        """A picklable job; data the pool workers lack ships inline."""
        inline: ProblemInstance | None = None
        if self._worker_names is not None:  # process pool
            if instance_name is not None:
                if instance_name not in self._worker_names:
                    inline = self.registry.instance(instance_name)
            elif dataset_names is not None and not all(
                name in self._worker_names for name in dataset_names
            ):
                inline = ProblemInstance(
                    query=build_query(record["query"]),
                    datasets=[self.registry.dataset(name) for name in dataset_names],
                )
        return SolveJob(
            instance_name=None if inline is not None else instance_name,
            query=None if inline is not None else record.get("query"),
            dataset_names=None if inline is not None else dataset_names,
            inline_instance=inline,
            algorithm=algorithm,
            seed=seed,
            restarts=restarts,
            time_limit=time_limit,
            max_iterations=max_iterations,
            observe=observe_solve,
            attempt=attempt,
            fault_index=fault_index,
            warm_start=warm_start,
        )

    async def _run_job(self, job: SolveJob, timeout: float) -> dict[str, Any]:
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        if self.executor_kind == "thread":
            call = functools.partial(run_solve_job, job, self.registry)
        else:
            call = functools.partial(run_solve_job, job)
        future = loop.run_in_executor(self._executor, call)
        return await asyncio.wait_for(future, timeout=timeout + WORKER_GRACE_SECONDS)
