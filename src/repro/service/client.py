"""Clients for the JSON-lines join service (sync and asyncio flavours).

:class:`JoinClient` is a plain blocking socket client — one connection,
one request per call, responses matched by the auto-assigned request id.
It is what the CLI ``query`` subcommand and the integration tests use
(each thread gets its own client; the class is not thread-safe).
:class:`AsyncJoinClient` is the same surface over asyncio streams for
callers already living in an event loop.

Both speak the schema in :mod:`repro.service.protocol`: requests are
validated before they leave the process, so a malformed call fails fast
locally instead of bouncing off the server.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Mapping

from .protocol import PROTOCOL_VERSION, solve_request, validate_request

__all__ = ["JoinClient", "AsyncJoinClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A structured error response, surfaced as an exception on demand.

    Carries the protocol error payload: :attr:`code`,
    :attr:`retryable`, and the server's message.
    """

    def __init__(self, response: Mapping[str, Any]) -> None:
        error = response.get("error", {})
        self.code = str(error.get("code", "internal"))
        self.retryable = bool(error.get("retryable", False))
        self.response = dict(response)
        super().__init__(f"{self.code}: {error.get('message', 'unknown error')}")


def _raise_for_status(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("status") != "ok":
        raise ServiceError(response)
    return response


class _RequestIds:
    """Monotonic request-id factory shared by both client flavours."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._next = 0

    def take(self) -> str:
        self._next += 1
        return f"{self._prefix}-{self._next}"


class JoinClient:
    """Blocking JSON-lines client (one socket, sequential requests)."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float | None = 60.0
    ) -> None:
        self._ids = _RequestIds("req")
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("r", encoding="utf-8")

    # -- transport ------------------------------------------------------
    def request(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Send one validated request record and return the raw response."""
        record = validate_request(dict(record))
        self._socket.sendall((json.dumps(record) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response: dict[str, Any] = json.loads(line)
        return response

    def close(self) -> None:
        self._reader.close()
        self._socket.close()

    def __enter__(self) -> "JoinClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations -----------------------------------------------------
    def _op(self, op: str, **fields: Any) -> dict[str, Any]:
        record = {"v": PROTOCOL_VERSION, "op": op, "id": self._ids.take(), **fields}
        return _raise_for_status(self.request(record))

    def ping(self) -> dict[str, Any]:
        return self._op("ping")

    def datasets(self) -> dict[str, Any]:
        return self._op("datasets")

    def stats(self) -> dict[str, Any]:
        return self._op("stats")

    def register(self, name: str, path: str) -> dict[str, Any]:
        return self._op("register", name=name, path=path)

    def shutdown(self) -> dict[str, Any]:
        return self._op("shutdown")

    def solve(self, *, check: bool = True, **fields: Any) -> dict[str, Any]:
        """Issue one solve request (see :func:`solve_request` for fields).

        With ``check`` (the default) an error response raises
        :class:`ServiceError`; pass ``check=False`` to get the raw record —
        callers doing their own backoff on ``overloaded`` want that.
        """
        record = solve_request(self._ids.take(), **fields)
        response = self.request(record)
        return _raise_for_status(response) if check else response


class AsyncJoinClient:
    """The same client surface over asyncio streams."""

    def __init__(self) -> None:
        self._ids = _RequestIds("areq")
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "AsyncJoinClient":
        client = cls()
        client._reader, client._writer = await asyncio.open_connection(host, port)
        return client

    async def request(self, record: Mapping[str, Any]) -> dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        record = validate_request(dict(record))
        self._writer.write((json.dumps(record) + "\n").encode("utf-8"))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response: dict[str, Any] = json.loads(line)
        return response

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def __aenter__(self) -> "AsyncJoinClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _op(self, op: str, **fields: Any) -> dict[str, Any]:
        record = {"v": PROTOCOL_VERSION, "op": op, "id": self._ids.take(), **fields}
        return _raise_for_status(await self.request(record))

    async def ping(self) -> dict[str, Any]:
        return await self._op("ping")

    async def datasets(self) -> dict[str, Any]:
        return await self._op("datasets")

    async def stats(self) -> dict[str, Any]:
        return await self._op("stats")

    async def register(self, name: str, path: str) -> dict[str, Any]:
        return await self._op("register", name=name, path=path)

    async def shutdown(self) -> dict[str, Any]:
        return await self._op("shutdown")

    async def solve(self, *, check: bool = True, **fields: Any) -> dict[str, Any]:
        record = solve_request(self._ids.take(), **fields)
        response = await self.request(record)
        return _raise_for_status(response) if check else response
