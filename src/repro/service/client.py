"""Clients for the JSON-lines join service (sync and asyncio flavours).

:class:`JoinClient` is a plain blocking socket client — one connection,
one request per call, responses matched by the auto-assigned request id.
It is what the CLI ``query`` subcommand and the integration tests use
(each thread gets its own client; the class is not thread-safe).
:class:`AsyncJoinClient` is the same surface over asyncio streams for
callers already living in an event loop.

Both speak the schema in :mod:`repro.service.protocol`: requests are
validated before they leave the process, so a malformed call fails fast
locally instead of bouncing off the server.

Retries honour the protocol's ``retryable`` contract: give
:class:`JoinClient` a :class:`RetryPolicy` and ``solve`` re-sends
requests that failed with a *retryable* error (``overloaded``,
``worker_crashed``, ``timeout``) after capped exponential backoff with
deterministic jitter, and transparently reconnects when the connection
itself drops mid-request.  Non-retryable errors are never re-sent — the
server has promised the same request would fail the same way.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping

from .protocol import PROTOCOL_VERSION, solve_request, validate_request

__all__ = ["JoinClient", "AsyncJoinClient", "RetryPolicy", "ServiceError"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``attempts`` is the *total* number of tries (1 = no retries).  The
    delay before retry ``k`` (0-based) is ``min(cap, base·2^k)`` scaled by
    a jitter factor drawn from ``random.Random(seed)`` — deterministic for
    a fixed seed, so tests can assert the exact schedule, while distinct
    seeds de-synchronise clients that would otherwise retry in lockstep.
    """

    attempts: int = 3
    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base < 0 or self.cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    def delays(self) -> list[float]:
        """The full backoff schedule: one delay per possible retry."""
        rng = random.Random(self.seed)
        return [
            min(self.cap, self.base * (2.0**k)) * (1.0 + self.jitter * rng.random())
            for k in range(max(0, self.attempts - 1))
        ]


class ServiceError(RuntimeError):
    """A structured error response, surfaced as an exception on demand.

    Carries the protocol error payload: :attr:`code`,
    :attr:`retryable`, and the server's message.
    """

    def __init__(self, response: Mapping[str, Any]) -> None:
        error = response.get("error", {})
        self.code = str(error.get("code", "internal"))
        self.retryable = bool(error.get("retryable", False))
        self.response = dict(response)
        super().__init__(f"{self.code}: {error.get('message', 'unknown error')}")


def _raise_for_status(response: dict[str, Any]) -> dict[str, Any]:
    if response.get("status") != "ok":
        raise ServiceError(response)
    return response


class _RequestIds:
    """Monotonic request-id factory shared by both client flavours."""

    def __init__(self, prefix: str) -> None:
        self._prefix = prefix
        self._next = 0

    def take(self) -> str:
        self._next += 1
        return f"{self._prefix}-{self._next}"


class JoinClient:
    """Blocking JSON-lines client (one socket, sequential requests)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float | None = 60.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._ids = _RequestIds("req")
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry
        self._close_state: dict[str, Any] | None = None
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("r", encoding="utf-8")

    # -- transport ------------------------------------------------------
    def request(self, record: Mapping[str, Any]) -> dict[str, Any]:
        """Send one validated request record and return the raw response."""
        record = validate_request(dict(record))
        self._socket.sendall((json.dumps(record) + "\n").encode("utf-8"))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response: dict[str, Any] = json.loads(line)
        return response

    def reconnect(self) -> None:
        """Drop the current socket (if any) and dial the server again."""
        self.close()
        self._close_state = None
        self._socket = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._reader = self._socket.makefile("r", encoding="utf-8")

    @property
    def target(self) -> tuple[str, int]:
        """The ``(host, port)`` this client dials (re-)connections to."""
        return self._host, self._port

    def rebind(self, host: str, port: int) -> None:
        """Point the client at a new endpoint and reconnect.

        This is the failover hook: when a server is respawned on a fresh
        ephemeral port, callers swap the endpoint in place instead of
        rebuilding the client (and its retry policy / request-id state).
        """
        self._host = host
        self._port = port
        self.reconnect()

    def close(self) -> dict[str, Any]:
        """Close the connection; idempotent, never raises.

        Returns the structured close state — ``{"closed": True, "error":
        None}`` on a clean close, with ``error`` describing any failure the
        close itself hit.  Repeated calls return the same state.
        """
        if self._close_state is not None:
            return self._close_state
        state: dict[str, Any] = {"closed": True, "error": None}
        for resource in (self._reader, self._socket):
            try:
                resource.close()
            except (ConnectionError, OSError) as error:
                state["error"] = f"{type(error).__name__}: {error}"
        self._close_state = state
        return state

    @property
    def close_state(self) -> dict[str, Any] | None:
        """The result of :meth:`close`, or ``None`` while still open."""
        return self._close_state

    def __enter__(self) -> "JoinClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations -----------------------------------------------------
    def _op(self, op: str, **fields: Any) -> dict[str, Any]:
        record = {"v": PROTOCOL_VERSION, "op": op, "id": self._ids.take(), **fields}
        return _raise_for_status(self.request(record))

    def ping(self) -> dict[str, Any]:
        return self._op("ping")

    def datasets(self) -> dict[str, Any]:
        return self._op("datasets")

    def stats(self) -> dict[str, Any]:
        return self._op("stats")

    def register(self, name: str, path: str) -> dict[str, Any]:
        return self._op("register", name=name, path=path)

    def shutdown(self) -> dict[str, Any]:
        return self._op("shutdown")

    def solve(self, *, check: bool = True, **fields: Any) -> dict[str, Any]:
        """Issue one solve request (see :func:`solve_request` for fields).

        With ``check`` (the default) an error response raises
        :class:`ServiceError`; pass ``check=False`` to get the raw record —
        callers doing their own backoff on ``overloaded`` want that.

        With a :class:`RetryPolicy` installed, retryable error responses
        and dropped connections are retried up to the policy's per-call
        attempt budget (reconnecting as needed); the final outcome is then
        checked or returned as above.
        """
        if self.retry is None:
            record = solve_request(self._ids.take(), **fields)
            response = self.request(record)
            return _raise_for_status(response) if check else response
        response = self._solve_with_retry(self.retry, fields)
        return _raise_for_status(response) if check else response

    def _solve_with_retry(
        self, policy: RetryPolicy, fields: dict[str, Any]
    ) -> dict[str, Any]:
        delays = policy.delays()
        last_error: ConnectionError | None = None
        last_response: dict[str, Any] | None = None
        for attempt in range(policy.attempts):
            if attempt > 0:
                time.sleep(delays[attempt - 1])
            record = solve_request(self._ids.take(), **fields)
            try:
                if last_error is not None:
                    self.reconnect()
                    last_error = None
                response = self.request(record)
            except ConnectionError as error:
                last_error = error
                continue
            if response.get("status") == "ok":
                return response
            error_payload = response.get("error", {})
            if not error_payload.get("retryable"):
                return response
            last_response = response
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error


class AsyncJoinClient:
    """The same client surface over asyncio streams.

    Retries mirror :class:`JoinClient` — the same :class:`RetryPolicy`
    schedule — but every delay is an ``await asyncio.sleep(...)``: a
    backoff must suspend the coroutine, never stall the event loop
    (RL010 guards exactly this in ``service/``).
    """

    def __init__(self, retry: RetryPolicy | None = None) -> None:
        self._ids = _RequestIds("areq")
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._close_state: dict[str, Any] | None = None
        self._host = "127.0.0.1"
        self._port = 0
        self.retry = retry

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        retry: RetryPolicy | None = None,
    ) -> "AsyncJoinClient":
        client = cls(retry=retry)
        client._host = host
        client._port = port
        client._reader, client._writer = await asyncio.open_connection(host, port)
        return client

    async def reconnect(self) -> None:
        """Drop the current stream (if any) and dial the server again."""
        await self.close()
        self._close_state = None
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )

    @property
    def target(self) -> tuple[str, int]:
        """The ``(host, port)`` this client dials (re-)connections to."""
        return self._host, self._port

    async def rebind(self, host: str, port: int) -> None:
        """Point the client at a new endpoint and reconnect.

        The async flavour of :meth:`JoinClient.rebind` — the supervisor
        uses it to keep one cached probe client per shard server across
        respawns onto fresh ephemeral ports.
        """
        self._host = host
        self._port = port
        await self.reconnect()

    async def request(self, record: Mapping[str, Any]) -> dict[str, Any]:
        assert self._reader is not None and self._writer is not None
        record = validate_request(dict(record))
        self._writer.write((json.dumps(record) + "\n").encode("utf-8"))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response: dict[str, Any] = json.loads(line)
        return response

    async def close(self) -> dict[str, Any]:
        """Close the connection; idempotent, never raises.

        Returns the structured close state (same shape as
        :meth:`JoinClient.close`): transport errors hit while closing are
        surfaced in ``"error"`` instead of being silently swallowed.
        """
        if self._close_state is not None:
            return self._close_state
        state: dict[str, Any] = {"closed": True, "error": None}
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError) as error:
                state["error"] = f"{type(error).__name__}: {error}"
        self._close_state = state
        return state

    @property
    def close_state(self) -> dict[str, Any] | None:
        """The result of :meth:`close`, or ``None`` while still open."""
        return self._close_state

    async def __aenter__(self) -> "AsyncJoinClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def _op(self, op: str, **fields: Any) -> dict[str, Any]:
        record = {"v": PROTOCOL_VERSION, "op": op, "id": self._ids.take(), **fields}
        return _raise_for_status(await self.request(record))

    async def ping(self) -> dict[str, Any]:
        return await self._op("ping")

    async def datasets(self) -> dict[str, Any]:
        return await self._op("datasets")

    async def stats(self) -> dict[str, Any]:
        return await self._op("stats")

    async def register(self, name: str, path: str) -> dict[str, Any]:
        return await self._op("register", name=name, path=path)

    async def shutdown(self) -> dict[str, Any]:
        return await self._op("shutdown")

    async def solve(self, *, check: bool = True, **fields: Any) -> dict[str, Any]:
        """Issue one solve request (see :meth:`JoinClient.solve`).

        With a :class:`RetryPolicy` installed, retryable errors and
        dropped connections re-send on the policy's backoff schedule —
        awaited via ``asyncio.sleep``, so other coroutines keep running.
        """
        if self.retry is None:
            record = solve_request(self._ids.take(), **fields)
            response = await self.request(record)
            return _raise_for_status(response) if check else response
        response = await self._solve_with_retry(self.retry, fields)
        return _raise_for_status(response) if check else response

    async def _solve_with_retry(
        self, policy: RetryPolicy, fields: dict[str, Any]
    ) -> dict[str, Any]:
        delays = policy.delays()
        last_error: ConnectionError | None = None
        last_response: dict[str, Any] | None = None
        for attempt in range(policy.attempts):
            if attempt > 0:
                await asyncio.sleep(delays[attempt - 1])
            record = solve_request(self._ids.take(), **fields)
            try:
                if last_error is not None:
                    await self.reconnect()
                    last_error = None
                response = await self.request(record)
            except ConnectionError as error:
                last_error = error
                continue
            if response.get("status") == "ok":
                return response
            error_payload = response.get("error", {})
            if not error_payload.get("retryable"):
                return response
            last_response = response
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error
