"""Deadline-driven query service: an async JSON-lines join server.

The paper's contract — *the best possible solution within a hard time
limit* — is exactly the contract of an SLO-bound query service.  This
package turns the batch library into a long-running multi-tenant server:

* :mod:`repro.service.protocol` — versioned request/response schema with
  :func:`validate_request`, mirroring the obs v1 event discipline;
* :mod:`repro.service.registry` — named dataset/instance registry with
  lazy :mod:`repro.data.io` loading and index warm-up;
* :mod:`repro.service.cache` — LRU+TTL solution cache keyed by a
  canonical query signature so isomorphic queries hit;
* :mod:`repro.service.admission` — bounded admission with load shedding
  and per-request deadline budgets built on :class:`repro.core.budget.Budget`;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the asyncio
  JSON-lines server dispatching solves onto a ``ProcessPoolExecutor``
  (via :func:`repro.core.parallel.parallel_restarts`) and its clients.

Every request degrades gracefully: on deadline expiry the server returns
the best-so-far solution flagged ``"approximate": true`` instead of
erroring; on overload it sheds with a structured retryable error.

Failures follow the same discipline (see :mod:`repro.service.errors` and
``docs/robustness.md``): a crashed worker pool is rebuilt and the job
re-dispatched against its remaining deadline; what cannot be recovered is
shed with a retryable ``worker_crashed``/``timeout`` error — never a
dropped connection.  :class:`RetryPolicy` is the client half of that
contract.
"""

from __future__ import annotations

from .admission import AdmissionController, Ticket
from .cache import CacheEntry, SolutionCache, canonical_query_key, solve_cache_key
from .client import AsyncJoinClient, JoinClient, RetryPolicy, ServiceError
from .errors import ClassifiedError, classify_exception
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    SOLVE_ALGORITHMS,
    error_response,
    ok_response,
    solve_request,
    validate_request,
)
from .registry import DatasetRegistry
from .server import JoinServer

__all__ = [
    "AdmissionController",
    "Ticket",
    "CacheEntry",
    "SolutionCache",
    "canonical_query_key",
    "solve_cache_key",
    "AsyncJoinClient",
    "JoinClient",
    "RetryPolicy",
    "ServiceError",
    "ClassifiedError",
    "classify_exception",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "SOLVE_ALGORITHMS",
    "error_response",
    "ok_response",
    "solve_request",
    "validate_request",
    "DatasetRegistry",
    "JoinServer",
]
