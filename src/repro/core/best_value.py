"""*Find best value* — the multi-window branch-and-bound of Figure 5.

Given the variable being re-instantiated, the current rectangles of its join
partners act as query *windows*; the goal is the object in the variable's
R*-tree that satisfies the most join conditions (intersects the most
windows, for the default predicate).  The search descends the tree visiting
entries in decreasing order of the number of windows they (may) satisfy and
prunes any subtree whose count cannot strictly beat the best leaf score
found so far — "if an intermediate node satisfies the same or a smaller
number of conditions than maxConditions, it cannot contain any better
solution and is not visited".

This single routine powers all three heuristics:

* **ILS** re-instantiates its worst variable with the result,
* **GILS** does the same but scores leaves with the *effective* value
  ``satisfied − λ·penalty`` (the intermediate-node bound stays admissible
  because penalties are non-negative),
* **SEA** uses it as its mutation operator.
"""

from __future__ import annotations

from typing import Any, Callable

from ..geometry import Intersects, Rect, SpatialPredicate
from ..index import RStarTree
from ..index.node import Node

__all__ = ["BestValue", "find_best_value", "brute_force_best_value"]


class BestValue:
    """Outcome of a successful search: the new object and its scores."""

    __slots__ = ("item", "rect", "satisfied", "score")

    def __init__(self, item: Any, rect: Rect, satisfied: int, score: float):
        self.item = item
        self.rect = rect
        #: number of join conditions the object satisfies
        self.satisfied = satisfied
        #: effective score (``satisfied`` minus any penalty contribution)
        self.score = score

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BestValue(item={self.item!r}, satisfied={self.satisfied}, "
            f"score={self.score})"
        )


def find_best_value(
    tree: RStarTree,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None = None,
) -> BestValue | None:
    """Best object of ``tree`` under the multi-window criterion.

    Parameters
    ----------
    constraints:
        ``(predicate, window)`` pairs: the join conditions incident to the
        variable being re-instantiated, with predicates oriented
        candidate→window.
    floor_score:
        Only results with ``score > floor_score`` are returned — callers
        pass the current assignment's (effective) score, so ``None`` means
        "no strictly better value exists" and the variable keeps its value.
    penalty:
        Optional GILS hook mapping an object id to its penalty contribution
        ``λ·penalty(v←r)``; leaf scores become ``satisfied − penalty(item)``.

    Returns ``None`` when no object beats ``floor_score`` (in particular
    when ``constraints`` is empty, since no object can then improve
    anything).
    """
    if not constraints:
        return None
    tree.stats.best_value_searches += 1
    if tree.root.mbr is None:
        return None
    if all(type(predicate) is Intersects for predicate, _w in constraints):
        # the paper's default condition: use the inlined hot path
        return _find_best_value_intersects(tree, constraints, floor_score, penalty)
    best: BestValue | None = None
    best_score = floor_score
    stats = tree.stats
    pager = tree.pager

    def descend(node: Node) -> None:
        nonlocal best, best_score
        stats.node_reads += 1
        if pager is not None:
            pager.access(id(node))
        if node.is_leaf:
            stats.leaf_reads += 1
            scored: list[tuple[int, Rect, Any]] = []
            for rect, item in node.entries():
                satisfied = 0
                for predicate, window in constraints:
                    if predicate.test(rect, window):
                        satisfied += 1
                if satisfied > best_score:
                    scored.append((satisfied, rect, item))
            # visit high-count entries first so the bound tightens early
            scored.sort(key=lambda entry: entry[0], reverse=True)
            for satisfied, rect, item in scored:
                if satisfied <= best_score:
                    break  # sorted: the rest are no better
                score = float(satisfied)
                if penalty is not None:
                    score -= penalty(item)
                if score > best_score:
                    best_score = score
                    best = BestValue(item, rect, satisfied, score)
            return
        candidates: list[tuple[int, Node]] = []
        for rect, child in node.entries():
            may_satisfy = 0
            for predicate, window in constraints:
                if predicate.node_may_satisfy(rect, window):
                    may_satisfy += 1
            if may_satisfy > best_score:
                candidates.append((may_satisfy, child))
        candidates.sort(key=lambda entry: entry[0], reverse=True)
        for may_satisfy, child in candidates:
            # re-check: descending a sibling may have raised the bound
            if may_satisfy > best_score:
                descend(child)

    descend(tree.root)
    return best


def _find_best_value_intersects(
    tree: RStarTree,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None,
) -> BestValue | None:
    """Hot path of :func:`find_best_value` for all-``intersects`` queries.

    Behaviourally identical to the generic search; the rectangle/window
    tests are inlined on raw coordinates because for ``intersects`` the
    leaf test and the intermediate-node admissible filter coincide (a child
    can only intersect a window its parent's MBR intersects).
    """
    windows = [(w.xmin, w.ymin, w.xmax, w.ymax) for _p, w in constraints]
    best: BestValue | None = None
    best_score = floor_score
    stats = tree.stats
    pager = tree.pager

    def descend(node: Node) -> None:
        nonlocal best, best_score
        stats.node_reads += 1
        if pager is not None:
            pager.access(id(node))
        is_leaf = node.is_leaf
        if is_leaf:
            stats.leaf_reads += 1
        scored: list[tuple[int, Rect, Any]] = []
        for position, rect in enumerate(node.bounds):
            xmin, ymin, xmax, ymax = rect
            satisfied = 0
            for wxmin, wymin, wxmax, wymax in windows:
                if xmin <= wxmax and wxmin <= xmax and ymin <= wymax and wymin <= ymax:
                    satisfied += 1
            if satisfied > best_score:
                scored.append((satisfied, rect, node.children[position]))
        scored.sort(key=lambda entry: entry[0], reverse=True)
        if is_leaf:
            for satisfied, rect, item in scored:
                if satisfied <= best_score:
                    break
                score = float(satisfied)
                if penalty is not None:
                    score -= penalty(item)
                if score > best_score:
                    best_score = score
                    best = BestValue(item, rect, satisfied, score)
        else:
            for satisfied, _rect, child in scored:
                if satisfied > best_score:
                    descend(child)

    descend(tree.root)
    return best


def brute_force_best_value(
    rects: list[Rect],
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None = None,
) -> BestValue | None:
    """Reference implementation scanning every object; the test oracle for
    :func:`find_best_value` (identical contract, no index)."""
    if not constraints:
        return None
    best: BestValue | None = None
    best_score = floor_score
    for item, rect in enumerate(rects):
        satisfied = sum(
            1 for predicate, window in constraints if predicate.test(rect, window)
        )
        score = float(satisfied)
        if penalty is not None:
            score -= penalty(item)
        if score > best_score:
            best_score = score
            best = BestValue(item, rect, satisfied, score)
    return best
