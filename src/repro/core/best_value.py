"""*Find best value* — the multi-window branch-and-bound of Figure 5.

Given the variable being re-instantiated, the current rectangles of its join
partners act as query *windows*; the goal is the object in the variable's
R*-tree that satisfies the most join conditions (intersects the most
windows, for the default predicate).  The search descends the tree visiting
entries in decreasing order of the number of windows they (may) satisfy and
prunes any subtree whose count cannot strictly beat the best leaf score
found so far — "if an intermediate node satisfies the same or a smaller
number of conditions than maxConditions, it cannot contain any better
solution and is not visited".

This single routine powers all three heuristics:

* **ILS** re-instantiates its worst variable with the result,
* **GILS** does the same but scores leaves with the *effective* value
  ``satisfied − λ·penalty`` (the intermediate-node bound stays admissible
  because penalties are non-negative),
* **SEA** uses it as its mutation operator.

Since it is *the* hot loop of the whole library, node entries are scored
with the columnar NumPy kernels of :mod:`repro.geometry.kernels`: each node
caches a packed ``(len, 4)`` bounds array and all of its entries are scored
in one vectorized call.  ``use_kernels=False`` selects the original scalar
loops — the oracle the property suite checks the kernels against.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..geometry import Intersects, Rect, RectColumns, SpatialPredicate
from ..geometry.kernels import count_satisfied, make_count_scorer
from ..index import RStarTree
from ..index.node import Node
from ..obs import current

__all__ = ["BestValue", "find_best_value", "brute_force_best_value"]


class BestValue:
    """Outcome of a successful search: the new object and its scores."""

    __slots__ = ("item", "rect", "satisfied", "score")

    def __init__(self, item: Any, rect: Rect, satisfied: int, score: float):
        self.item = item
        self.rect = rect
        #: number of join conditions the object satisfies
        self.satisfied = satisfied
        #: effective score (``satisfied`` minus any penalty contribution)
        self.score = score

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BestValue(item={self.item!r}, satisfied={self.satisfied}, "
            f"score={self.score})"
        )


def find_best_value(
    tree: RStarTree,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None = None,
    use_kernels: bool = True,
) -> BestValue | None:
    """Best object of ``tree`` under the multi-window criterion.

    Parameters
    ----------
    constraints:
        ``(predicate, window)`` pairs: the join conditions incident to the
        variable being re-instantiated, with predicates oriented
        candidate→window.
    floor_score:
        Only results with ``score > floor_score`` are returned — callers
        pass the current assignment's (effective) score, so ``None`` means
        "no strictly better value exists" and the variable keeps its value.
    penalty:
        Optional GILS hook mapping an object id to its penalty contribution
        ``λ·penalty(v←r)``; leaf scores become ``satisfied − penalty(item)``.
    use_kernels:
        Score whole nodes with the vectorized NumPy kernels (default).
        ``False`` runs the original scalar loops; both paths return
        identical results (enforced by the property suite).

    Returns ``None`` when no object beats ``floor_score`` (in particular
    when ``constraints`` is empty, since no object can then improve
    anything).
    """
    if not constraints:
        return None
    tree.stats.best_value_searches += 1
    obs = current()
    if obs.enabled:
        if use_kernels:
            obs.counter("best_value.kernel_searches").inc()
        else:
            obs.counter("best_value.scalar_searches").inc()
    if tree.root.mbr is None:
        return None
    all_intersects = all(type(predicate) is Intersects for predicate, _w in constraints)
    if use_kernels:
        return _find_best_value_kernels(
            tree, constraints, floor_score, penalty, all_intersects
        )
    if all_intersects:
        # the paper's default condition: use the inlined hot path
        return _find_best_value_intersects_scalar(tree, constraints, floor_score, penalty)
    return _find_best_value_scalar(tree, constraints, floor_score, penalty)


def _find_best_value_kernels(
    tree: RStarTree,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None,
    all_intersects: bool,
) -> BestValue | None:
    """Vectorized branch-and-bound: one kernel call scores a whole node.

    For the default all-``intersects`` case the leaf test and the
    intermediate-node admissible filter coincide, so a single broadcast
    against the packed window array serves both roles; other predicate mixes
    go through the generic per-constraint kernels.
    """
    if all_intersects:
        # leaf test and admissible filter coincide: one pre-packed broadcast
        scorer = make_count_scorer(constraints)

        def score_node(node: Node, _is_leaf: bool) -> np.ndarray:
            return scorer(node.bounds_array())

    else:
        leaf_scorer = make_count_scorer(constraints, "test")
        inner_scorer = make_count_scorer(constraints, "filter")

        def score_node(node: Node, is_leaf: bool) -> np.ndarray:
            array = node.bounds_array()
            return leaf_scorer(array) if is_leaf else inner_scorer(array)

    best: BestValue | None = None
    best_score = floor_score
    stats = tree.stats
    pager = tree.pager
    if pager is not None:
        obs = current()
        buffer_hits = obs.counter("index.buffer.hit")
        buffer_misses = obs.counter("index.buffer.miss")

    def descend(node: Node) -> None:
        nonlocal best, best_score
        stats.node_reads += 1
        if pager is not None:
            if pager.access(id(node)):
                buffer_hits.inc()
            else:
                buffer_misses.inc()
        is_leaf = node.is_leaf
        if is_leaf:
            stats.leaf_reads += 1
        counts = score_node(node, is_leaf)
        candidates = np.flatnonzero(counts > best_score)
        if candidates.size == 0:
            return
        # visit high-count entries first so the bound tightens early; the
        # stable sort preserves entry order among ties, matching the scalar
        # path's stable list sort exactly
        order = candidates[np.argsort(-counts[candidates], kind="stable")]
        children = node.children
        if is_leaf:
            for position in order:
                satisfied = int(counts[position])
                if satisfied <= best_score:
                    break  # sorted: the rest are no better
                item = children[position]
                score = float(satisfied)
                if penalty is not None:
                    score -= penalty(item)
                if score > best_score:
                    best_score = score
                    best = BestValue(item, node.bounds[position], satisfied, score)
        else:
            for position in order:
                # re-check: descending a sibling may have raised the bound
                if counts[position] > best_score:
                    descend(children[position])

    descend(tree.root)
    return best


def _find_best_value_scalar(
    tree: RStarTree,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None,
) -> BestValue | None:
    """Original object-at-a-time search (the kernel oracle)."""
    best: BestValue | None = None
    best_score = floor_score
    stats = tree.stats
    pager = tree.pager
    if pager is not None:
        obs = current()
        buffer_hits = obs.counter("index.buffer.hit")
        buffer_misses = obs.counter("index.buffer.miss")

    def descend(node: Node) -> None:
        nonlocal best, best_score
        stats.node_reads += 1
        if pager is not None:
            if pager.access(id(node)):
                buffer_hits.inc()
            else:
                buffer_misses.inc()
        if node.is_leaf:
            stats.leaf_reads += 1
            scored: list[tuple[int, Rect, Any]] = []
            for rect, item in node.entries():
                satisfied = 0
                for predicate, window in constraints:
                    if predicate.test(rect, window):
                        satisfied += 1
                if satisfied > best_score:
                    scored.append((satisfied, rect, item))
            # visit high-count entries first so the bound tightens early
            scored.sort(key=lambda entry: entry[0], reverse=True)
            for satisfied, rect, item in scored:
                if satisfied <= best_score:
                    break  # sorted: the rest are no better
                score = float(satisfied)
                if penalty is not None:
                    score -= penalty(item)
                if score > best_score:
                    best_score = score
                    best = BestValue(item, rect, satisfied, score)
            return
        candidates: list[tuple[int, Node]] = []
        for rect, child in node.entries():
            may_satisfy = 0
            for predicate, window in constraints:
                if predicate.node_may_satisfy(rect, window):
                    may_satisfy += 1
            if may_satisfy > best_score:
                candidates.append((may_satisfy, child))
        candidates.sort(key=lambda entry: entry[0], reverse=True)
        for may_satisfy, child in candidates:
            # re-check: descending a sibling may have raised the bound
            if may_satisfy > best_score:
                descend(child)

    descend(tree.root)
    return best


def _find_best_value_intersects_scalar(
    tree: RStarTree,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None,
) -> BestValue | None:
    """Scalar hot path for all-``intersects`` queries.

    Behaviourally identical to the generic search; the rectangle/window
    tests are inlined on raw coordinates because for ``intersects`` the
    leaf test and the intermediate-node admissible filter coincide (a child
    can only intersect a window its parent's MBR intersects).
    """
    windows = [(w.xmin, w.ymin, w.xmax, w.ymax) for _p, w in constraints]
    best: BestValue | None = None
    best_score = floor_score
    stats = tree.stats
    pager = tree.pager
    if pager is not None:
        obs = current()
        buffer_hits = obs.counter("index.buffer.hit")
        buffer_misses = obs.counter("index.buffer.miss")

    def descend(node: Node) -> None:
        nonlocal best, best_score
        stats.node_reads += 1
        if pager is not None:
            if pager.access(id(node)):
                buffer_hits.inc()
            else:
                buffer_misses.inc()
        is_leaf = node.is_leaf
        if is_leaf:
            stats.leaf_reads += 1
        scored: list[tuple[int, Rect, Any]] = []
        for position, rect in enumerate(node.bounds):
            xmin, ymin, xmax, ymax = rect
            satisfied = 0
            for wxmin, wymin, wxmax, wymax in windows:
                if xmin <= wxmax and wxmin <= xmax and ymin <= wymax and wymin <= ymax:
                    satisfied += 1
            if satisfied > best_score:
                scored.append((satisfied, rect, node.children[position]))
        scored.sort(key=lambda entry: entry[0], reverse=True)
        if is_leaf:
            for satisfied, rect, item in scored:
                if satisfied <= best_score:
                    break
                score = float(satisfied)
                if penalty is not None:
                    score -= penalty(item)
                if score > best_score:
                    best_score = score
                    best = BestValue(item, rect, satisfied, score)
        else:
            for satisfied, _rect, child in scored:
                if satisfied > best_score:
                    descend(child)

    descend(tree.root)
    return best


def brute_force_best_value(
    rects: Sequence[Rect] | RectColumns,
    constraints: list[tuple[SpatialPredicate, Rect]],
    floor_score: float,
    penalty: Callable[[Any], float] | None = None,
    use_kernels: bool = True,
) -> BestValue | None:
    """Reference implementation scanning every object; the test oracle for
    :func:`find_best_value` (identical contract, no index).

    Accepts either a plain rectangle sequence or a pre-built
    :class:`~repro.geometry.kernels.RectColumns`; with ``use_kernels`` the
    scan is a handful of NumPy reductions instead of an object-at-a-time
    loop.
    """
    if not constraints:
        return None
    if use_kernels:
        columns = (
            rects if isinstance(rects, RectColumns) else RectColumns.from_rects(rects)
        )
        counts = count_satisfied(columns, constraints)
        candidates = np.flatnonzero(counts > floor_score)
        if candidates.size == 0:
            return None
        if penalty is None:
            # first occurrence of the maximum == the scalar loop's winner
            position = int(candidates[np.argmax(counts[candidates])])
            satisfied = int(counts[position])
            return BestValue(position, columns.rect(position), satisfied, float(satisfied))
        # penalties are non-negative, so only rows with counts > floor can
        # exceed the floor after subtraction; score just those
        scores = counts[candidates].astype(np.float64)
        scores -= np.array([penalty(int(item)) for item in candidates])
        best_relative = int(np.argmax(scores))
        if scores[best_relative] <= floor_score:
            return None
        position = int(candidates[best_relative])
        return BestValue(
            position,
            columns.rect(position),
            int(counts[position]),
            float(scores[best_relative]),
        )
    if isinstance(rects, RectColumns):
        rects = [rects.rect(index) for index in range(len(rects))]
    best: BestValue | None = None
    best_score = floor_score
    for item, rect in enumerate(rects):
        satisfied = sum(
            1 for predicate, window in constraints if predicate.test(rect, window)
        )
        score = float(satisfied)
        if penalty is not None:
            score -= penalty(item)
        if score > best_score:
            best_score = score
            best = BestValue(item, rect, satisfied, score)
    return best
