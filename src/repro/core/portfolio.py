"""Heuristic portfolios (§7: "several heuristics could be combined").

The paper observes that ILS/GILS dominate under very tight budgets while
SEA wins given room to converge (Figure 10b), and suggests combining
heuristics.  :func:`portfolio_search` packages the obvious combination:
split the budget across several heuristics, run them on the same instance,
and return the best solution any of them found — with the convergence
traces merged so the result still reads like a single anytime run.

With ``workers > 1`` the members execute *concurrently* on the process pool
of :mod:`repro.core.parallel` instead of sequentially: each member keeps its
budget share, but the wall-clock cost of the portfolio drops from the sum of
the shares towards the largest share.  Parallel members draw hash-derived
seeds (one per member index) rather than consuming a shared generator, so
parallel results are reproducible for a given seed but differ from the
sequential schedule's.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..obs import collect_exports, current, merge_states, replay_into
from ..query import ProblemInstance
from .budget import Budget, Stopwatch
from .evaluator import QueryEvaluator
from .parallel import (
    RunSpec,
    _merge_concurrent_traces,
    derive_seed,
    member_stats,
    run_specs,
)
from .result import ConvergenceTrace, RunResult
from .two_step import HEURISTICS

__all__ = ["portfolio_search", "DEFAULT_PORTFOLIO"]

#: tight-budget specialist first, then the strongest converger
DEFAULT_PORTFOLIO = ("ils", "sea")


def portfolio_search(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random = 0,
    heuristics: Sequence[str] = DEFAULT_PORTFOLIO,
    shares: Sequence[float] | None = None,
    evaluator: QueryEvaluator | None = None,
    workers: int = 1,
) -> RunResult:
    """Run several heuristics on shares of one budget; keep the best.

    Parameters
    ----------
    heuristics:
        Names from :data:`repro.core.two_step.HEURISTICS` (``ils``,
        ``gils``, ``sea``), executed in order.
    shares:
        Budget fractions per heuristic (normalised; default equal split).
        Only meaningful for time budgets; iteration budgets are split the
        same way on iteration counts.
    workers:
        ``1`` (default) runs the members sequentially — the paper's
        combination, with early exit once a member finds an exact solution.
        ``> 1`` runs them concurrently on separate processes; each member
        still gets its budget share, so total wall-clock approaches the
        largest share instead of the sum.

    Returns a single :class:`RunResult` labelled ``portfolio(...)`` whose
    trace concatenates the member traces on a common clock.
    """
    if not heuristics:
        raise ValueError("portfolio needs at least one heuristic")
    unknown = [name for name in heuristics if name not in HEURISTICS]
    if unknown:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(f"unknown heuristics {unknown}; known: {known}")
    if shares is None:
        shares = [1.0] * len(heuristics)
    if len(shares) != len(heuristics):
        raise ValueError(
            f"{len(heuristics)} heuristics but {len(shares)} shares"
        )
    if any(share <= 0 for share in shares):
        raise ValueError(f"shares must be positive, got {list(shares)}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    total_share = sum(shares)
    fractions = [share / total_share for share in shares]

    if workers > 1:
        return _portfolio_parallel(
            instance, budget, seed, heuristics, fractions, workers
        )

    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    evaluator = evaluator or QueryEvaluator(instance)
    obs = current()

    best: RunResult | None = None
    merged_trace = ConvergenceTrace()
    elapsed = 0.0
    iterations = 0
    member_summaries = []
    with obs.span("portfolio.run"):
        # sequential members emit directly into the ambient observation
        for name, fraction in zip(heuristics, fractions):
            member_budget = budget.split(fraction)
            result = HEURISTICS[name](instance, member_budget, rng, evaluator)
            member_summaries.append(member_stats(result))
            for point in result.trace.points:
                if best is None or point.violations < best.best_violations:
                    merged_trace.record(
                        elapsed + point.elapsed,
                        iterations + point.iterations,
                        point.violations,
                        point.similarity,
                    )
            if best is None or result.best_violations < best.best_violations:
                best = result
            elapsed += result.elapsed
            iterations += result.iterations
            if best.best_violations == 0:
                break

    assert best is not None
    return RunResult(
        algorithm=f"portfolio({'+'.join(heuristics)})",
        best_assignment=best.best_assignment,
        best_violations=best.best_violations,
        best_similarity=best.best_similarity,
        elapsed=elapsed,
        iterations=iterations,
        milestones=len(member_summaries),
        trace=merged_trace,
        stats={"members": member_summaries},
    )


def _portfolio_parallel(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random,
    heuristics: Sequence[str],
    fractions: Sequence[float],
    workers: int,
) -> RunResult:
    """Concurrent members on the process pool, one spec per heuristic."""
    base_seed = (
        seed.randrange(2**32) if isinstance(seed, random.Random) else int(seed)
    )
    specs = []
    for index, (name, fraction) in enumerate(zip(heuristics, fractions)):
        member_budget = budget.split(fraction)
        specs.append(
            RunSpec(
                heuristic=name,
                seed=derive_seed(base_seed, index),
                time_limit=member_budget.time_limit,
                max_iterations=member_budget.max_iterations,
                index=index,
            )
        )
    obs = current()
    watch = Stopwatch()
    with obs.span("portfolio.run"):
        results = run_specs(instance, specs, workers)
    elapsed = watch.elapsed()

    stats: dict[str, object] = {"workers": workers}
    if obs.enabled:
        payloads = collect_exports([result.stats for result in results])
        merged_members = merge_states(payloads)
        replay_into(obs, merged_members)
        obs.counter("parallel.members").inc(len(results))
        stats["obs"] = {
            "members": merged_members["members"],
            "metrics": merged_members["metrics"],
            "events": len(merged_members["events"]),
        }

    best_index, best = min(
        enumerate(results), key=lambda pair: (pair[1].best_violations, pair[0])
    )
    stats["members"] = [member_stats(result) for result in results]
    stats["winner"] = best_index
    return RunResult(
        algorithm=f"portfolio({'+'.join(heuristics)})",
        best_assignment=best.best_assignment,
        best_violations=best.best_violations,
        best_similarity=best.best_similarity,
        elapsed=elapsed,
        iterations=sum(result.iterations for result in results),
        milestones=len(results),
        trace=_merge_concurrent_traces(results),
        stats=stats,
    )
