"""Heuristic portfolios (§7: "several heuristics could be combined").

The paper observes that ILS/GILS dominate under very tight budgets while
SEA wins given room to converge (Figure 10b), and suggests combining
heuristics.  :func:`portfolio_search` packages the obvious combination:
split the budget across several heuristics, run them in sequence on the
same instance, and return the best solution any of them found — with the
convergence traces merged so the result still reads like a single anytime
run.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..query import ProblemInstance
from .budget import Budget
from .evaluator import QueryEvaluator
from .result import ConvergenceTrace, RunResult
from .two_step import HEURISTICS

__all__ = ["portfolio_search", "DEFAULT_PORTFOLIO"]

#: tight-budget specialist first, then the strongest converger
DEFAULT_PORTFOLIO = ("ils", "sea")


def portfolio_search(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random = 0,
    heuristics: Sequence[str] = DEFAULT_PORTFOLIO,
    shares: Sequence[float] | None = None,
    evaluator: QueryEvaluator | None = None,
) -> RunResult:
    """Run several heuristics on shares of one budget; keep the best.

    Parameters
    ----------
    heuristics:
        Names from :data:`repro.core.two_step.HEURISTICS` (``ils``,
        ``gils``, ``sea``), executed in order.
    shares:
        Budget fractions per heuristic (normalised; default equal split).
        Only meaningful for time budgets; iteration budgets are split the
        same way on iteration counts.

    Returns a single :class:`RunResult` labelled ``portfolio(...)`` whose
    trace concatenates the member traces on a common clock.
    """
    if not heuristics:
        raise ValueError("portfolio needs at least one heuristic")
    unknown = [name for name in heuristics if name not in HEURISTICS]
    if unknown:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(f"unknown heuristics {unknown}; known: {known}")
    if shares is None:
        shares = [1.0] * len(heuristics)
    if len(shares) != len(heuristics):
        raise ValueError(
            f"{len(heuristics)} heuristics but {len(shares)} shares"
        )
    if any(share <= 0 for share in shares):
        raise ValueError(f"shares must be positive, got {list(shares)}")
    total_share = sum(shares)

    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    evaluator = evaluator or QueryEvaluator(instance)

    best: RunResult | None = None
    merged_trace = ConvergenceTrace()
    elapsed = 0.0
    iterations = 0
    member_summaries = []
    for name, share in zip(heuristics, shares):
        fraction = share / total_share
        member_budget = Budget(
            time_limit=(
                budget.time_limit * fraction if budget.time_limit else None
            ),
            max_iterations=(
                max(1, int(budget.max_iterations * fraction))
                if budget.max_iterations
                else None
            ),
            clock=budget._clock,
        )
        result = HEURISTICS[name](instance, member_budget, rng, evaluator)
        member_summaries.append(result.summary())
        for point in result.trace.points:
            if best is None or point.violations < best.best_violations:
                merged_trace.record(
                    elapsed + point.elapsed,
                    iterations + point.iterations,
                    point.violations,
                    point.similarity,
                )
        if best is None or result.best_violations < best.best_violations:
            best = result
        elapsed += result.elapsed
        iterations += result.iterations
        if best.best_violations == 0:
            break

    assert best is not None
    return RunResult(
        algorithm=f"portfolio({'+'.join(heuristics)})",
        best_assignment=best.best_assignment,
        best_violations=best.best_violations,
        best_similarity=best.best_similarity,
        elapsed=elapsed,
        iterations=iterations,
        milestones=len(member_summaries),
        trace=merged_trace,
        stats={"members": member_summaries},
    )
