"""Results and convergence traces of search runs.

The paper reports two views of a run: the final best similarity (Figures
10a, 10c) and the best similarity *as a function of time* (Figure 10b).
:class:`RunResult` carries both — the trace records a point every time the
incumbent improves, which is exactly the staircase Figure 10b plots.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["TracePoint", "ConvergenceTrace", "RunResult"]


@dataclass(frozen=True)
class TracePoint:
    """One improvement of the incumbent solution."""

    elapsed: float
    iterations: int
    violations: int
    similarity: float


class ConvergenceTrace:
    """Append-only record of incumbent improvements during one run."""

    def __init__(self) -> None:
        self._points: list[TracePoint] = []

    def record(
        self, elapsed: float, iterations: int, violations: int, similarity: float
    ) -> None:
        self._points.append(TracePoint(elapsed, iterations, violations, similarity))

    @property
    def points(self) -> list[TracePoint]:
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def similarity_at(self, elapsed: float) -> float:
        """Best similarity achieved by time ``elapsed`` (0.0 before any point).

        This turns the trace into the monotone staircase of Figure 10b and
        lets the harness sample all runs on a common time grid.
        """
        times = [point.elapsed for point in self._points]
        position = bisect.bisect_right(times, elapsed)
        if position == 0:
            return 0.0
        return self._points[position - 1].similarity

    def sample(self, grid: Sequence[float]) -> list[float]:
        """Similarity staircase sampled at every instant of ``grid``."""
        return [self.similarity_at(t) for t in grid]


@dataclass
class RunResult:
    """Outcome of one algorithm execution on one problem instance."""

    algorithm: str
    best_assignment: tuple[int, ...]
    best_violations: int
    best_similarity: float
    elapsed: float
    #: algorithm-specific work units performed (see each algorithm's docs)
    iterations: int
    #: local maxima visited (ILS/GILS) or generations evolved (SEA) or
    #: search-tree nodes expanded (IBB)
    milestones: int = 0
    trace: ConvergenceTrace = field(default_factory=ConvergenceTrace)
    #: free-form counters (index node reads, restarts, penalties issued, ...)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def is_exact(self) -> bool:
        """True when the best solution violates no join condition."""
        return self.best_violations == 0

    def summary(self) -> str:
        """One-line human-readable digest used by the CLI and examples."""
        kind = "exact" if self.is_exact else "approximate"
        return (
            f"{self.algorithm}: similarity={self.best_similarity:.4f} "
            f"({kind}, {self.best_violations} violated), "
            f"{self.elapsed:.2f}s, {self.iterations} iterations"
        )
