"""Mutable solution state with incremental inconsistency maintenance.

A *solution* of an ``n``-way join is one object id per variable.  Search
moves change a single variable at a time, so re-counting all ``E`` join
conditions per move would waste a factor ``E / degree``; ``SolutionState``
maintains per-variable satisfied-condition counts and updates only the
``degree(v)`` conditions incident to a re-instantiated variable.

The class also implements the two solution-level policies the paper's
algorithms share:

* the **worst variable** rule (conflict minimisation [MJP+92]): most
  violated conditions first, ties broken by fewest satisfied conditions;
* the constraint *windows* handed to ``find_best_value`` — the current
  rectangles of a variable's join partners.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..geometry import Rect, SpatialPredicate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .evaluator import QueryEvaluator

__all__ = ["SolutionState"]


class SolutionState:
    """An assignment plus cached per-variable satisfaction counts."""

    __slots__ = ("evaluator", "values", "sat", "satisfied_edges")

    evaluator: "QueryEvaluator"
    values: list[int]
    sat: list[int]
    satisfied_edges: int

    def __init__(self, evaluator: "QueryEvaluator", values: list[int]) -> None:
        if len(values) != evaluator.num_variables:
            raise ValueError(
                f"expected {evaluator.num_variables} values, got {len(values)}"
            )
        self.evaluator = evaluator
        self.values = values
        self.sat = evaluator.satisfied_counts(values)
        self.satisfied_edges = sum(self.sat) // 2

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    @property
    def violations(self) -> int:
        """Inconsistency degree of the current assignment."""
        return self.evaluator.num_constraints - self.satisfied_edges

    @property
    def similarity(self) -> float:
        return self.evaluator.similarity(self.violations)

    @property
    def is_exact(self) -> bool:
        return self.satisfied_edges == self.evaluator.num_constraints

    def violated_count(self, variable: int) -> int:
        """Number of violated conditions incident to ``variable``."""
        return self.evaluator.degrees[variable] - self.sat[variable]

    def as_tuple(self) -> tuple[int, ...]:
        return tuple(self.values)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_value(self, variable: int, object_id: int) -> None:
        """Re-instantiate ``variable``; updates counts in O(degree)."""
        old_id = self.values[variable]
        if old_id == object_id:
            return
        evaluator = self.evaluator
        rects = evaluator.rects
        old_rect = rects[variable][old_id]
        new_rect = rects[variable][object_id]
        values = self.values
        sat_delta = 0
        for j, predicate in evaluator.neighbors[variable]:
            partner_rect = rects[j][values[j]]
            old_ok = predicate.test(old_rect, partner_rect)
            new_ok = predicate.test(new_rect, partner_rect)
            if old_ok == new_ok:
                continue
            step = 1 if new_ok else -1
            self.sat[j] += step
            sat_delta += step
        self.sat[variable] += sat_delta
        self.satisfied_edges += sat_delta
        values[variable] = object_id

    def copy(self) -> "SolutionState":
        """An independent copy (used by SEA's offspring allocation)."""
        clone = SolutionState.__new__(SolutionState)
        clone.evaluator = self.evaluator
        clone.values = list(self.values)
        clone.sat = list(self.sat)
        clone.satisfied_edges = self.satisfied_edges
        return clone

    @classmethod
    def from_counts(
        cls, evaluator: "QueryEvaluator", values: list[int], sat: list[int]
    ) -> "SolutionState":
        """Build a state from pre-computed satisfied counts.

        Used by :meth:`QueryEvaluator.make_states`, which evaluates a whole
        population of assignments with the batched kernels and must not pay
        the per-state edge recount of ``__init__``.
        """
        state = cls.__new__(cls)
        state.evaluator = evaluator
        state.values = list(values)
        state.sat = [int(count) for count in sat]
        state.satisfied_edges = sum(state.sat) // 2
        return state

    # ------------------------------------------------------------------
    # search policies
    # ------------------------------------------------------------------
    def worst_variable_order(self) -> list[int]:
        """Variables sorted worst-first (most violations, then fewest
        satisfied conditions, then index for determinism)."""
        return sorted(
            range(self.evaluator.num_variables),
            key=lambda v: (-self.violated_count(v), self.sat[v], v),
        )

    def constraint_windows(
        self, variable: int
    ) -> list[tuple[SpatialPredicate, Rect]]:
        """The *windows* of ``find_best_value``: for each join partner of
        ``variable``, the predicate (oriented candidate→partner) and the
        partner's current rectangle."""
        evaluator = self.evaluator
        values = self.values
        rects = evaluator.rects
        return [
            (predicate, rects[j][values[j]])
            for j, predicate in evaluator.neighbors[variable]
        ]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify the incremental counters against a full recount."""
        expected = self.evaluator.satisfied_counts(self.values)
        assert self.sat == expected, f"stale sat counts: {self.sat} != {expected}"
        assert self.satisfied_edges == sum(expected) // 2, "stale edge count"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SolutionState(values={self.values}, violations={self.violations})"
        )
