"""Guided Indexed Local Search (GILS) — §4 of the paper.

GILS is ILS with a memory: it generates a *single* random seed and, instead
of restarting at local maxima, punishes some of the maximum's assignments
and keeps climbing with respect to the **effective inconsistency degree**
(violations plus ``λ·Σ penalty``).  Consequences of the punishment rule:

* the current local maximum's effective degree grows (sometimes repeatedly)
  until a neighbour looks better — search performs controlled downhill
  moves instead of restarting;
* solutions sharing many assignments with visited maxima are avoided, which
  steers search towards unexplored regions.

The paper's λ is tiny (``10⁻¹⁰·s``), so penalties mostly act as
tie-breakers that let search drift across plateaus — the regime where GILS
beats ILS on large queries (n = 20, 25).  Comparisons on effective scores
are therefore *strict* float comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..faults import checkpoint_incumbent
from ..index.stats import index_work_since, node_reads_probe, snapshot_trees
from ..obs import current
from ..query import ProblemInstance
from .best_value import find_best_value
from .budget import Budget
from .evaluator import QueryEvaluator
from .penalties import PenaltyTable
from .result import RunResult
from .solution import SolutionState

__all__ = ["GILSConfig", "guided_indexed_local_search", "DEFAULT_LAMBDA_FACTOR"]

#: λ = DEFAULT_LAMBDA_FACTOR · s, with s the problem size in bits (§5).
DEFAULT_LAMBDA_FACTOR = 1e-10


@dataclass
class GILSConfig:
    """GILS knobs; ``lam=None`` applies the paper's ``λ = 10⁻¹⁰·s``."""

    lam: float | None = None
    stop_on_exact: bool = True

    def resolve_lambda(self, instance: ProblemInstance) -> float:
        if self.lam is not None:
            if self.lam < 0:
                raise ValueError(f"λ must be non-negative, got {self.lam}")
            return self.lam
        return DEFAULT_LAMBDA_FACTOR * instance.problem_size()


def guided_indexed_local_search(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random = 0,
    config: GILSConfig | None = None,
    evaluator: QueryEvaluator | None = None,
    warm_start: Sequence[int] | None = None,
) -> RunResult:
    """Run GILS within ``budget``; one iteration = one improvement attempt.

    The incumbent is tracked by *actual* violations (penalties only guide
    the walk, never the reported result).  ``warm_start`` replaces the
    random seed solution with a given assignment; since the seed is
    recorded as incumbent before the walk starts, a warm-started run never
    reports a worse answer than the assignment it was given.
    """
    config = config or GILSConfig()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    evaluator = evaluator or QueryEvaluator(instance)
    warm_values = evaluator.validated_warm_start(warm_start)
    penalties = PenaltyTable(config.resolve_lambda(instance))
    obs = current()
    baseline = snapshot_trees(evaluator.trees)
    probe = node_reads_probe(evaluator.trees)
    budget.start()

    trace = obs.convergence_trace()
    with obs.span("gils.run", io=probe):
        with obs.span("gils.seed"):
            if warm_values is not None:
                state = evaluator.make_state(warm_values)
            else:
                state = evaluator.random_state(rng)
        best_values = state.as_tuple()
        best_violations = state.violations
        trace.record(budget.elapsed(), 0, best_violations, state.similarity)
        checkpoint_incumbent(
            best_values, best_violations, state.similarity, budget.elapsed(), 0
        )
        iterations = 0
        local_maxima = 0

        def note_if_best(candidate: SolutionState) -> None:
            nonlocal best_values, best_violations
            if candidate.violations < best_violations:
                best_violations = candidate.violations
                best_values = candidate.as_tuple()
                trace.record(
                    budget.elapsed(), iterations, best_violations, candidate.similarity
                )
                checkpoint_incumbent(
                    best_values, best_violations, candidate.similarity,
                    budget.elapsed(), iterations,
                )

        done = config.stop_on_exact and state.is_exact
        with obs.span("gils.climb", io=probe):
            while not done and not budget.exhausted():
                improved = _improve_once_effective(state, evaluator, penalties)
                iterations += 1
                budget.tick()
                if improved:
                    note_if_best(state)
                    if config.stop_on_exact and state.is_exact:
                        break
                else:
                    # local maximum w.r.t. the effective inconsistency degree
                    local_maxima += 1
                    obs.counter("gils.local_maxima").inc()
                    obs.event("local_maximum", violations=state.violations)
                    penalties.punish_minimum(state.values)

    obs.counter("gils.penalties_issued").inc(penalties.total_issued)
    index_work = index_work_since(evaluator.trees, baseline)
    obs.absorb_index_work(index_work)
    return RunResult(
        algorithm="GILS",
        best_assignment=best_values,
        best_violations=best_violations,
        best_similarity=evaluator.similarity(best_violations),
        elapsed=budget.elapsed(),
        iterations=iterations,
        milestones=local_maxima,
        trace=trace,
        stats={
            "local_maxima": local_maxima,
            "penalties_issued": penalties.total_issued,
            "penalised_assignments": len(penalties),
            "lambda": penalties.lam,
            "index": index_work,
        },
    )


def _improve_once_effective(
    state: SolutionState, evaluator: QueryEvaluator, penalties: PenaltyTable
) -> bool:
    """One GILS step: strictly improve some variable's *effective* score.

    The effective score of assignment ``v ← r`` is
    ``satisfied(v) − λ·penalty(v ← r)``; raising it by any amount lowers the
    solution's effective inconsistency degree.
    """
    for variable in state.worst_variable_order():
        floor = float(state.sat[variable]) - penalties.weighted(
            variable, state.values[variable]
        )
        constraints = state.constraint_windows(variable)
        if not constraints:
            continue
        found = find_best_value(
            evaluator.trees[variable],
            constraints,
            floor_score=floor,
            penalty=lambda item, _v=variable: penalties.weighted(_v, item),
        )
        if found is not None:
            state.set_value(variable, found.item)
            return True
    return False
