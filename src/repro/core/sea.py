"""Spatial Evolutionary Algorithm (SEA) — §5 of the paper.

An evolutionary algorithm whose operators exploit the spatial structure of
the problem and the R*-tree indexes:

* **selection** — tournament: each solution competes against ``T`` random
  population members and is replaced by the fittest of the group [BT96];
* **crossover** — greedy, structure-aware: with probability ``μ_c`` a
  solution keeps its ``c`` "best" variables (chosen by a greedy procedure
  that grows a well-satisfied subgraph) and adopts the remaining
  assignments from another random solution.  The crossover point ``c``
  starts at 1 and grows every ``g_c`` generations, so crossover generates
  variety early and preserves good solutions late;
* **mutation** — the only index-based operator and the one that makes SEA
  "behave increasingly like ILS" in late generations: with probability
  ``μ_m`` the worst variable is re-instantiated via ``find_best_value``, so
  mutation can only improve a solution.

The paper's ubiquitous winner: given enough time it usually finds exact
solutions even for hard 25-variable cliques.

Laptop-scale adaptations (both rooted in the paper's §7, which proposes
"variable parameter values depending on the time available" and seeding the
population with ILS local maxima):

* ``seed_with_local_maxima`` — the initial population consists of ILS local
  maxima instead of raw random seeds;
* ``immigrants_per_generation`` — every generation the worst ``k`` members
  are replaced by freshly climbed ILS local maxima.  The paper's published
  parameters assume populations of thousands (``p = 100·s``), large enough
  that genotype diversity survives the whole time budget; interpreted
  Python forces populations ~two orders of magnitude smaller, which fully
  homogenise within seconds and reduce SEA to a single local-search climb.
  The immigrant stream restores the exploration that the paper obtains
  from sheer population size, while keeping selection, greedy crossover
  and index-based mutation exactly as published.  Set it to 0 (and
  ``seed_with_local_maxima=False``) for the strictly-as-published variant;
  ``benchmarks/bench_ablation_sea_variants.py`` compares the two.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..faults import checkpoint_incumbent
from ..index.stats import index_work_since, node_reads_probe, snapshot_trees
from ..obs import current
from ..query import ProblemInstance
from .best_value import find_best_value
from .budget import Budget
from .evaluator import QueryEvaluator
from .result import RunResult
from .sea_params import SEAParameters
from .solution import SolutionState

__all__ = ["SEAConfig", "spatial_evolutionary_algorithm", "greedy_keep_set"]

#: population scale used when none is given: sized for interpreted-Python
#: throughput (the paper's C-era ``p = 100·s`` would spend the whole budget
#: on a single generation here).
DEFAULT_SCALE = 0.005


@dataclass
class SEAConfig:
    """SEA knobs; ``parameters=None`` derives them from the problem size."""

    parameters: SEAParameters | None = None
    scale: float = DEFAULT_SCALE
    stop_on_exact: bool = True
    #: start from ILS local maxima instead of random seeds (§7 suggestion)
    seed_with_local_maxima: bool = True
    #: fresh ILS local maxima replacing the worst members each generation;
    #: ``None`` scales with the population (population // 8), 0 gives the
    #: strictly-as-published algorithm
    immigrants_per_generation: int | None = None

    def __post_init__(self) -> None:
        if (
            self.immigrants_per_generation is not None
            and self.immigrants_per_generation < 0
        ):
            raise ValueError(
                f"immigrants_per_generation must be >= 0, "
                f"got {self.immigrants_per_generation}"
            )

    def resolve(self, instance: ProblemInstance) -> SEAParameters:
        if self.parameters is not None:
            return self.parameters
        return SEAParameters.from_problem_size(instance.problem_size(), self.scale)

    def resolve_immigrants(self, parameters: SEAParameters) -> int:
        if self.immigrants_per_generation is not None:
            return self.immigrants_per_generation
        return max(2, parameters.population // 8)


def spatial_evolutionary_algorithm(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random = 0,
    config: SEAConfig | None = None,
    evaluator: QueryEvaluator | None = None,
    warm_start: Sequence[int] | None = None,
) -> RunResult:
    """Run SEA within ``budget``; one budget *iteration* = one generation.

    ``warm_start`` replaces the first member of the initial population with
    a given assignment (before the optional seeding climb, which only
    improves it), so a warm-started run never reports a worse answer than
    the assignment it was given.
    """
    config = config or SEAConfig()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    evaluator = evaluator or QueryEvaluator(instance)
    warm_values = evaluator.validated_warm_start(warm_start)
    parameters = config.resolve(instance)
    num_variables = evaluator.num_variables
    obs = current()
    baseline = snapshot_trees(evaluator.trees)
    probe = node_reads_probe(evaluator.trees)
    budget.start()

    trace = obs.convergence_trace()
    generation = 0
    mutations = 0
    immigrants = 0
    crossovers = 0
    with obs.span("sea.run", io=probe):
        with obs.span("sea.init", io=probe):
            # the whole initial population is evaluated in one batched kernel
            # pass; values are drawn in the same rng order as per-state
            # construction
            population = evaluator.random_states(rng, parameters.population)
            if warm_values is not None:
                population[0] = evaluator.make_state(warm_values)
            if config.seed_with_local_maxima:
                population = [
                    _climb_to_local_maximum(state, evaluator, budget)
                    for state in population
                ]
        best_values: tuple[int, ...] = population[0].as_tuple()
        best_violations = population[0].violations

        def note_if_best(state: SolutionState) -> bool:
            nonlocal best_values, best_violations
            if state.violations < best_violations:
                best_violations = state.violations
                best_values = state.as_tuple()
                trace.record(
                    budget.elapsed(), generation, best_violations, state.similarity
                )
                checkpoint_incumbent(
                    best_values, best_violations, state.similarity,
                    budget.elapsed(), generation,
                )
                return True
            return False

        # evaluate the initial generation
        for state in population:
            note_if_best(state)
        exact_found = config.stop_on_exact and best_violations == 0

        while not exact_found and not budget.exhausted():
            with obs.span("sea.generation", io=probe):
                point = parameters.crossover_point(generation, num_variables)

                # --- offspring allocation (tournament selection) ---------
                size = len(population)
                next_population = []
                for state in population:
                    winner = state
                    for _ in range(parameters.tournament):
                        rival = population[rng.randrange(size)]
                        if rival.violations < winner.violations:
                            winner = rival
                    next_population.append(winner.copy())
                population = next_population

                # --- immigration (laptop-scale adaptation, see module
                # docstring) --------------------------------------------
                immigrant_quota = config.resolve_immigrants(parameters)
                if immigrant_quota and not budget.exhausted():
                    worst_first = sorted(
                        range(size), key=lambda index: -population[index].violations
                    )
                    for index in worst_first[:immigrant_quota]:
                        fresh = _climb_to_local_maximum(
                            evaluator.random_state(rng), evaluator, budget
                        )
                        population[index] = fresh
                        immigrants += 1
                        if (
                            note_if_best(fresh)
                            and config.stop_on_exact
                            and best_violations == 0
                        ):
                            exact_found = True
                            break
                    if exact_found:
                        break

                # --- crossover ------------------------------------------
                crossed = 0
                for state in population:
                    if rng.random() >= parameters.crossover_rate:
                        continue
                    donor = population[rng.randrange(size)]
                    if donor is state:
                        continue
                    if parameters.crossover_kind == "greedy":
                        keep = greedy_keep_set(state, point)
                    else:
                        keep = _random_keep_set(num_variables, point, rng)
                    for variable in range(num_variables):
                        if variable not in keep:
                            state.set_value(variable, donor.values[variable])
                    crossed += 1
                if crossed:
                    crossovers += crossed
                    obs.event(
                        "crossover", generation=generation, point=point, count=crossed
                    )

                # --- mutation (the index-based operator) ----------------
                for state in population:
                    if (
                        parameters.mutation_rate < 1.0
                        and rng.random() >= parameters.mutation_rate
                    ):
                        continue
                    _mutate(state, evaluator)
                    mutations += 1

                # --- evaluation -----------------------------------------
                generation += 1
                budget.tick()
                for state in population:
                    if (
                        note_if_best(state)
                        and config.stop_on_exact
                        and best_violations == 0
                    ):
                        exact_found = True
                        break

    obs.counter("sea.generations").inc(generation)
    obs.counter("sea.mutations").inc(mutations)
    obs.counter("sea.crossovers").inc(crossovers)
    obs.counter("sea.immigrants").inc(immigrants)
    index_work = index_work_since(evaluator.trees, baseline)
    obs.absorb_index_work(index_work)
    return RunResult(
        algorithm="SEA",
        best_assignment=best_values,
        best_violations=best_violations,
        best_similarity=evaluator.similarity(best_violations),
        elapsed=budget.elapsed(),
        iterations=generation,
        milestones=generation,
        trace=trace,
        stats={
            "population": parameters.population,
            "tournament": parameters.tournament,
            "mutations": mutations,
            "immigrants": immigrants,
            "crossovers": crossovers,
            "final_crossover_point": parameters.crossover_point(
                generation, num_variables
            ),
            "index": index_work,
        },
    )


def _climb_to_local_maximum(
    state: SolutionState, evaluator: QueryEvaluator, budget: Budget
) -> SolutionState:
    """Hill-climb ``state`` to an ILS local maximum (budget-aware)."""
    while not budget.exhausted():
        if not _improve_some_variable(state, evaluator):
            break
    return state


def _improve_some_variable(state: SolutionState, evaluator: QueryEvaluator) -> bool:
    """One worst-first improvement step (shared with mutation)."""
    for variable in state.worst_variable_order():
        if state.violated_count(variable) == 0:
            return False
        constraints = state.constraint_windows(variable)
        found = find_best_value(
            evaluator.trees[variable],
            constraints,
            floor_score=float(state.sat[variable]),
        )
        if found is not None:
            state.set_value(variable, found.item)
            return True
    return False


def greedy_keep_set(state: SolutionState, count: int) -> set[int]:
    """The ``c`` variables that keep their assignments during crossover.

    The paper's greedy splitting (Figure 8): variables are first ordered by
    number of satisfied conditions (descending; ties → fewer violations,
    then index).  The best variable seeds the set ``X``; thereafter the
    variable satisfying the most conditions *with respect to variables
    already in X* is inserted, ties resolved by the initial order.  The
    effect is that an already-solved subgraph survives crossover intact.
    """
    evaluator = state.evaluator
    num_variables = evaluator.num_variables
    count = max(1, min(count, num_variables - 1))
    initial_order = sorted(
        range(num_variables),
        key=lambda v: (-state.sat[v], state.violated_count(v), v),
    )
    # satisfied_mask[v] = bitmask of join partners v currently satisfies;
    # one pass over the edges, then the greedy loop is pure bit counting
    values = state.values
    rects = evaluator.rects
    satisfied_mask = [0] * num_variables
    for i, j, predicate in evaluator.query.edges():
        if predicate.test(rects[i][values[i]], rects[j][values[j]]):
            satisfied_mask[i] |= 1 << j
            satisfied_mask[j] |= 1 << i
    keep: set[int] = {initial_order[0]}
    keep_mask = 1 << initial_order[0]
    remaining = [v for v in initial_order if v != initial_order[0]]
    while len(keep) < count:
        # remaining is in initial order, so max() on the count alone keeps
        # the paper's tie-break (earlier initial position wins)
        best_variable = max(
            remaining, key=lambda v: (satisfied_mask[v] & keep_mask).bit_count()
        )
        keep.add(best_variable)
        keep_mask |= 1 << best_variable
        remaining.remove(best_variable)
    return keep


def _random_keep_set(num_variables: int, count: int, rng: random.Random) -> set[int]:
    """Ablation: the classic single-point crossover of [H75]/[PMK+99] —
    a random contiguous prefix keeps its assignments."""
    count = max(1, min(count, num_variables - 1))
    start = rng.randrange(num_variables)
    return {(start + offset) % num_variables for offset in range(count)}


def _mutate(state: SolutionState, evaluator: QueryEvaluator) -> None:
    """Index-based mutation: re-instantiate the worst variable via
    ``find_best_value`` (only ever improves the solution)."""
    _improve_some_variable(state, evaluator)
