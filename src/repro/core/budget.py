"""Processing budgets for anytime search.

The paper's central premise is query processing *within a time limit* ("the
retrieval of the best possible solutions within a time threshold").  Every
anytime algorithm in :mod:`repro.core` therefore consumes a :class:`Budget`:

* wall-clock limits reproduce the paper's ``10·n``-second thresholds,
* iteration limits make unit tests and CI benchmarks deterministic,
* an injectable ``clock`` lets tests simulate the passage of time.

A ``Budget`` is single-use: it starts counting at the first
:meth:`Budget.exhausted`/:meth:`Budget.start` call and cannot be restarted —
create a fresh one per run (:meth:`Budget.spawn` copies the limits).
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Budget", "Stopwatch"]


class Stopwatch:
    """A started timer: the sanctioned way to measure a duration.

    Raw clock reads are confined to this module (lint rule RL002) so that
    every time source in the engine stays injectable — pass a fake
    ``clock`` in tests and the measurement is simulated like a
    :class:`Budget`'s.  The watch starts at construction; call
    :meth:`elapsed` as often as needed.
    """

    __slots__ = ("_clock", "_started_at")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._started_at = clock()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return self._clock() - self._started_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stopwatch(elapsed={self.elapsed():.6f})"


class Budget:
    """A limit on wall-clock time and/or abstract iterations.

    Parameters
    ----------
    time_limit:
        Seconds of wall-clock time (``None`` = unlimited).
    max_iterations:
        Number of :meth:`tick` calls allowed (``None`` = unlimited).  What an
        iteration means is algorithm-specific (ILS improvement attempts, SEA
        generations, IBB node expansions) and documented per algorithm.
    clock:
        Monotonic time source; replace in tests to control time explicitly.
    """

    def __init__(
        self,
        time_limit: float | None = None,
        max_iterations: int | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if time_limit is None and max_iterations is None:
            raise ValueError("budget must limit at least one of time or iterations")
        if time_limit is not None and time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        if max_iterations is not None and max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        self.time_limit = time_limit
        self.max_iterations = max_iterations
        self._clock = clock
        self._started_at: float | None = None
        self._iterations = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def seconds(cls, limit: float, clock: Callable[[], float] = time.perf_counter) -> "Budget":
        """A pure wall-clock budget (the paper's mode)."""
        return cls(time_limit=limit, clock=clock)

    @classmethod
    def iterations(cls, limit: int) -> "Budget":
        """A deterministic iteration budget (the testing mode)."""
        return cls(max_iterations=limit)

    def spawn(self) -> "Budget":
        """A fresh, unstarted budget with the same limits."""
        return Budget(self.time_limit, self.max_iterations, self._clock)

    def split(self, fraction: float) -> "Budget":
        """A fresh, unstarted budget holding ``fraction`` of the limits.

        The public way to hand one share of a budget to a portfolio member
        or a parallel restart: time limits scale proportionally, iteration
        limits scale but never drop below one iteration, and the member
        keeps the parent's clock so injected test clocks stay in control.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return Budget(
            time_limit=(
                self.time_limit * fraction if self.time_limit is not None else None
            ),
            max_iterations=(
                max(1, int(self.max_iterations * fraction))
                if self.max_iterations is not None
                else None
            ),
            clock=self._clock,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Budget":
        """Begin counting time; idempotent.  Returns ``self`` for chaining."""
        if self._started_at is None:
            self._started_at = self._clock()
        return self

    def tick(self, amount: int = 1) -> None:
        """Record ``amount`` units of work."""
        self._iterations += amount

    def exhausted(self) -> bool:
        """True once either limit is hit; starts the clock on first call."""
        self.start()
        if self.max_iterations is not None and self._iterations >= self.max_iterations:
            return True
        if self.time_limit is not None and self.elapsed() >= self.time_limit:
            return True
        return False

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 before starting)."""
        if self._started_at is None:
            return 0.0
        return self._clock() - self._started_at

    @property
    def iterations_used(self) -> int:
        return self._iterations

    def progress(self) -> float:
        """Fraction of the budget consumed, in ``[0, 1]``.

        The maximum over the time and iteration fractions (whichever limit
        is closer to exhaustion).  Annealing schedules use this to cool from
        start to end of an arbitrary budget.
        """
        self.start()
        fractions = [0.0]
        if self.time_limit is not None:
            fractions.append(self.elapsed() / self.time_limit)
        if self.max_iterations is not None:
            fractions.append(self._iterations / self.max_iterations)
        return min(1.0, max(fractions))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Budget(time_limit={self.time_limit}, "
            f"max_iterations={self.max_iterations}, used={self._iterations})"
        )
