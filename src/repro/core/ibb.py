"""Indexed Branch and Bound (IBB) — the systematic algorithm of §6.

A Window-Reduction [PMT99] variant that retrieves the *best* (not only
exact) solutions: variables are instantiated depth-first; candidate values
for each variable are enumerated through index window queries in decreasing
order of the number of join conditions they satisfy with respect to the
already-instantiated variables; a partial solution is abandoned only when
its accumulated violations can no longer lead to a solution strictly better
than the incumbent (optimistically assuming zero future violations).

IBB is complete: run to exhaustion it provably returns an optimal solution.
Its practical role in the paper is the *two-step* methods — seeding the
incumbent with a heuristic's solution (ILS or SEA) shrinks the search space
by orders of magnitude (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..index.queries import search_predicate
from ..index.stats import index_work_since, node_reads_probe, snapshot_trees
from ..obs import current
from ..query import ProblemInstance
from .budget import Budget
from .evaluator import QueryEvaluator
from .result import RunResult

__all__ = ["IBBConfig", "indexed_branch_and_bound", "connectivity_order"]


@dataclass
class IBBConfig:
    """IBB knobs.

    ``stop_at_violations`` ends the search as soon as the incumbent is at
    least this good — 0 (the default) stops at the first exact solution,
    which is also the provable optimum.  Set it to -1 to force exhaustion
    even after an exact solution is found (useful to prove uniqueness).
    """

    stop_at_violations: int = 0
    use_connectivity_order: bool = True


def indexed_branch_and_bound(
    instance: ProblemInstance,
    budget: Budget | None = None,
    initial_bound: int | None = None,
    initial_assignment: tuple[int, ...] | None = None,
    config: IBBConfig | None = None,
    evaluator: QueryEvaluator | None = None,
) -> RunResult:
    """Run IBB; one budget *iteration* = one search-node expansion.

    Parameters
    ----------
    initial_bound:
        Incumbent violation count to start from — the "target similarity"
        the two-step methods obtain from a heuristic.  ``None`` starts
        unbounded (the paper's plain-IBB baseline).
    initial_assignment:
        The solution realising ``initial_bound`` (returned unchanged if
        nothing better is found).

    The result's ``stats['proven_optimal']`` is True when the search space
    was exhausted or an exact solution was found.
    """
    config = config or IBBConfig()
    evaluator = evaluator or QueryEvaluator(instance)
    budget = budget or Budget.iterations(10**12)
    obs = current()
    tree_baseline = snapshot_trees(evaluator.trees)
    probe = node_reads_probe(evaluator.trees)
    budget.start()

    num_variables = evaluator.num_variables
    if config.use_connectivity_order:
        order = connectivity_order(evaluator)
    else:
        order = list(range(num_variables))

    # incumbent: strictly fewer violations than this are searched for
    if initial_bound is not None:
        if initial_assignment is None or len(initial_assignment) != num_variables:
            raise ValueError("initial_bound requires a matching initial_assignment")
        incumbent_violations = initial_bound
        incumbent_values: tuple[int, ...] | None = tuple(initial_assignment)
    else:
        incumbent_violations = evaluator.num_constraints + 1
        incumbent_values = None

    trace = obs.convergence_trace()
    nodes_expanded = 0
    exhausted_cleanly = True
    values = [0] * num_variables

    # instantiated neighbors of order[d] that come earlier in the order
    earlier_neighbors = []
    position_of = {variable: depth for depth, variable in enumerate(order)}
    for variable in order:
        earlier = [
            (j, predicate)
            for j, predicate in evaluator.neighbors[variable]
            if position_of[j] < position_of[variable]
        ]
        earlier_neighbors.append(earlier)

    def record_incumbent(violations: int) -> None:
        nonlocal incumbent_violations, incumbent_values
        incumbent_violations = violations
        incumbent_values = tuple(values)
        trace.record(
            budget.elapsed(),
            nodes_expanded,
            violations,
            evaluator.similarity(violations),
        )

    class _Stop(Exception):
        pass

    def descend(depth: int, partial_violations: int) -> None:
        nonlocal nodes_expanded, exhausted_cleanly
        if partial_violations >= incumbent_violations:
            return
        if depth == num_variables:
            record_incumbent(partial_violations)
            if incumbent_violations <= config.stop_at_violations:
                raise _Stop
            return
        variable = order[depth]
        edges = earlier_neighbors[depth]
        for object_id, satisfied in _candidates(evaluator, variable, edges, values):
            nodes_expanded += 1
            budget.tick()
            if budget.exhausted():
                exhausted_cleanly = False
                raise _Stop
            added_violations = len(edges) - satisfied
            if partial_violations + added_violations >= incumbent_violations:
                # candidates come in decreasing-satisfied order: stop here
                return
            values[variable] = object_id
            descend(depth + 1, partial_violations + added_violations)

    with obs.span("ibb.run", io=probe):
        try:
            descend(0, 0)
        except _Stop:
            pass
    obs.counter("ibb.nodes_expanded").inc(nodes_expanded)
    index_work = index_work_since(evaluator.trees, tree_baseline)
    obs.absorb_index_work(index_work)

    proven = exhausted_cleanly or incumbent_violations == 0
    if incumbent_values is None:
        # nothing completed within the budget; fall back to a trivial tuple
        incumbent_values = tuple(0 for _ in range(num_variables))
        incumbent_violations = evaluator.count_violations(incumbent_values)
        proven = False
    return RunResult(
        algorithm="IBB",
        best_assignment=incumbent_values,
        best_violations=incumbent_violations,
        best_similarity=evaluator.similarity(incumbent_violations),
        elapsed=budget.elapsed(),
        iterations=nodes_expanded,
        milestones=nodes_expanded,
        trace=trace,
        stats={
            "nodes_expanded": nodes_expanded,
            "proven_optimal": proven,
            "index": index_work,
        },
    )


def _candidates(evaluator, variable, edges, values):
    """Candidate values for ``variable``, best first.

    Yields ``(object_id, satisfied)`` in decreasing ``satisfied`` order,
    where ``satisfied`` counts the conditions held against the instantiated
    neighbors in ``edges``.  Counts come from one index window query per
    edge; objects matching no window form the implicit 0-bucket and are
    enumerated last (they are reached only when the bound still allows
    ``len(edges)`` extra violations).
    """
    dataset_size = len(evaluator.rects[variable])
    if not edges:
        for object_id in range(dataset_size):
            yield object_id, 0
        return
    counts: dict[int, int] = {}
    tree = evaluator.trees[variable]
    rects = evaluator.rects
    for j, predicate in edges:
        window = rects[j][values[j]]
        for _rect, item in search_predicate(tree, predicate, window):
            counts[item] = counts.get(item, 0) + 1
    buckets: dict[int, list[int]] = {}
    for object_id, satisfied in counts.items():
        buckets.setdefault(satisfied, []).append(object_id)
    for satisfied in range(len(edges), 0, -1):
        for object_id in sorted(buckets.get(satisfied, ())):
            yield object_id, satisfied
    # 0-bucket: everything the window queries never saw
    for object_id in range(dataset_size):
        if object_id not in counts:
            yield object_id, 0


def connectivity_order(evaluator: QueryEvaluator) -> list[int]:
    """Static variable order maximising early constraint propagation.

    Greedy: start from the highest-degree variable, then repeatedly append
    the unordered variable with the most edges into the ordered prefix
    (ties by total degree, then index).  For cliques any order is
    equivalent; for chains this yields an end-to-end sweep.
    """
    num_variables = evaluator.num_variables
    degrees = evaluator.degrees
    first = max(range(num_variables), key=lambda v: (degrees[v], -v))
    order = [first]
    chosen = {first}
    while len(order) < num_variables:
        best_variable = -1
        best_key: tuple[int, int, int] | None = None
        for variable in range(num_variables):
            if variable in chosen:
                continue
            into_prefix = sum(
                1 for j, _p in evaluator.neighbors[variable] if j in chosen
            )
            key = (-into_prefix, -degrees[variable], variable)
            if best_key is None or key < best_key:
                best_key = key
                best_variable = variable
        order.append(best_variable)
        chosen.add(best_variable)
    return order
