"""SEA parameter schedule (§5).

SEA involves interrelated parameters; the paper tunes them as functions of
the **problem size** ``s = log₂ Π Nᵢ`` (bits to encode one solution,
[CFG+98]) so that one setting works across query graphs and dataset sizes::

    T   = 0.05 · s        tournament size
    μ_c = 0.6             crossover rate
    g_c = 10 · s          generations between crossover-point increments
    μ_m = 1               mutation rate
    p   = 100 · s         population size

Those values were chosen for a C implementation running for 10·n seconds;
pure Python gets through far fewer generations, so :meth:`SEAParameters.scaled`
shrinks the population (and ``g_c`` with it, to preserve the crossover-point
schedule relative to the generation count) — the paper's own §7 suggestion
that "the number of solutions p in the initial population may be reduced for
very-limited-time cases, in order to achieve fast convergence".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEAParameters"]


@dataclass
class SEAParameters:
    """Concrete parameter values for one SEA run."""

    population: int
    tournament: int
    crossover_rate: float = 0.6
    mutation_rate: float = 1.0
    #: generations between increments of the crossover point c
    crossover_point_interval: int = 10
    #: 'greedy' = the paper's structure-aware splitting, 'random' = the
    #: [PMK+99]-style single-point ablation
    crossover_kind: str = "greedy"

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError(f"population must be >= 2, got {self.population}")
        if not 1 <= self.tournament < self.population:
            raise ValueError(
                f"tournament must be in [1, population), got {self.tournament}"
            )
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError(f"crossover_rate must be in [0,1], got {self.crossover_rate}")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError(f"mutation_rate must be in [0,1], got {self.mutation_rate}")
        if self.crossover_point_interval < 1:
            raise ValueError(
                f"crossover_point_interval must be >= 1, "
                f"got {self.crossover_point_interval}"
            )
        if self.crossover_kind not in ("greedy", "random"):
            raise ValueError(
                f"crossover_kind must be 'greedy' or 'random', "
                f"got {self.crossover_kind!r}"
            )

    @classmethod
    def from_problem_size(cls, problem_size: float, scale: float = 1.0) -> "SEAParameters":
        """The paper's schedule, optionally shrunk by ``scale``.

        ``scale=1`` gives the published values; smaller scales divide the
        population and the crossover-point interval proportionally (floored
        at useful minima) for time-constrained / interpreted-language runs.
        """
        if problem_size <= 0:
            raise ValueError(f"problem_size must be positive, got {problem_size}")
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        population = max(8, round(100 * problem_size * scale))
        tournament = max(1, min(population - 1, round(0.05 * problem_size)))
        interval = max(1, round(10 * problem_size * scale))
        return cls(
            population=population,
            tournament=tournament,
            crossover_point_interval=interval,
        )

    def crossover_point(self, generation: int, num_variables: int) -> int:
        """The crossover point ``c`` for a given generation.

        Starts at 1 and increases every ``crossover_point_interval``
        generations, capped at ``n − 1`` so crossover always exchanges at
        least one assignment.
        """
        point = 1 + generation // self.crossover_point_interval
        return min(point, num_variables - 1)
