"""Two-step processing: heuristic search seeding systematic search (§6).

Systematic algorithms like IBB "can quickly discover the best solutions if
they have some target similarity to prune the search space" — but a good
target is hard to guess a priori.  The two-step methods obtain it by first
running a non-systematic heuristic (ILS for a second, or SEA to
convergence) and passing its best solution to IBB as the initial incumbent.
The paper's Figure 11 shows SEA+IBB beating plain IBB by 1-2 orders of
magnitude in time-to-exact-solution; frequently the heuristic already finds
the exact solution and IBB never runs at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..index.stats import node_reads_probe
from ..obs import current
from ..query import ProblemInstance
from .annealing import SAConfig, indexed_simulated_annealing
from .budget import Budget
from .evaluator import QueryEvaluator
from .gils import GILSConfig, guided_indexed_local_search
from .ibb import IBBConfig, indexed_branch_and_bound
from .ils import ILSConfig, indexed_local_search
from .result import RunResult
from .sea import SEAConfig, spatial_evolutionary_algorithm

__all__ = ["TwoStepResult", "two_step", "HEURISTICS"]

#: name → callable(instance, budget, seed, evaluator, warm_start=None) for
#: the first step; ``warm_start`` seeds the search with a prior incumbent
HEURISTICS = {
    "ils": lambda instance, budget, seed, evaluator, warm_start=None: indexed_local_search(
        instance, budget, seed, ILSConfig(), evaluator, warm_start=warm_start
    ),
    "gils": lambda instance, budget, seed, evaluator, warm_start=None: guided_indexed_local_search(
        instance, budget, seed, GILSConfig(), evaluator, warm_start=warm_start
    ),
    "sea": lambda instance, budget, seed, evaluator, warm_start=None: spatial_evolutionary_algorithm(
        instance, budget, seed, SEAConfig(), evaluator, warm_start=warm_start
    ),
    "isa": lambda instance, budget, seed, evaluator, warm_start=None: indexed_simulated_annealing(
        instance, budget, seed, SAConfig(), evaluator, warm_start=warm_start
    ),
}


@dataclass
class TwoStepResult:
    """Combined outcome: the heuristic run, the (optional) IBB run, totals."""

    heuristic: RunResult
    systematic: RunResult | None
    best_assignment: tuple[int, ...]
    best_violations: int
    best_similarity: float
    total_elapsed: float

    @property
    def is_exact(self) -> bool:
        return self.best_violations == 0

    @property
    def skipped_systematic(self) -> bool:
        """True when the heuristic already found an exact solution."""
        return self.systematic is None

    def summary(self) -> str:
        phase = "heuristic only" if self.skipped_systematic else "heuristic + IBB"
        return (
            f"two-step({self.heuristic.algorithm}): "
            f"similarity={self.best_similarity:.4f} in {self.total_elapsed:.2f}s "
            f"({phase})"
        )


def two_step(
    instance: ProblemInstance,
    heuristic: str,
    heuristic_budget: Budget,
    systematic_budget: Budget | None = None,
    seed: int | random.Random = 0,
    ibb_config: IBBConfig | None = None,
    evaluator: QueryEvaluator | None = None,
) -> TwoStepResult:
    """Run ``heuristic`` then IBB seeded with the heuristic's best solution.

    When the heuristic already reaches an exact solution, IBB is skipped
    entirely ("often, especially for small queries, the exact solution is
    found by the non-systematic heuristics, in which case systematic search
    is not performed at all").
    """
    try:
        run_heuristic = HEURISTICS[heuristic]
    except KeyError:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(f"unknown heuristic {heuristic!r}; known: {known}") from None
    evaluator = evaluator or QueryEvaluator(instance)
    obs = current()
    probe = node_reads_probe(evaluator.trees)

    with obs.span("two_step.heuristic", io=probe):
        first = run_heuristic(instance, heuristic_budget, seed, evaluator)
    if first.is_exact:
        return TwoStepResult(
            heuristic=first,
            systematic=None,
            best_assignment=first.best_assignment,
            best_violations=first.best_violations,
            best_similarity=first.best_similarity,
            total_elapsed=first.elapsed,
        )

    with obs.span("two_step.systematic", io=probe):
        second = indexed_branch_and_bound(
            instance,
            budget=systematic_budget,
            initial_bound=first.best_violations,
            initial_assignment=first.best_assignment,
            config=ibb_config,
            evaluator=evaluator,
        )
    if second.best_violations <= first.best_violations:
        best = second
    else:  # pragma: no cover - IBB never regresses below its seed
        best = first
    return TwoStepResult(
        heuristic=first,
        systematic=second,
        best_assignment=best.best_assignment,
        best_violations=best.best_violations,
        best_similarity=best.best_similarity,
        total_elapsed=first.elapsed + second.elapsed,
    )
