"""Indexed Local Search (ILS) — §3 of the paper.

Restart hill climbing where the uphill move is computed by the R*-tree:

1. start from a random *seed* solution,
2. repeatedly pick the **worst variable** (most violated conditions; ties by
   fewest satisfied) and re-instantiate it with the object returned by
   ``find_best_value``; if the worst variable cannot be strictly improved,
   try the second worst, and so on,
3. when no variable can be improved the solution is a **local maximum**:
   remember it if it is the best seen, then restart from a fresh seed,
4. stop when the budget is exhausted (or an exact solution is found and
   ``stop_on_exact`` is set), returning the best solution ever visited.

The ``use_index=False`` mode replaces ``find_best_value`` with the random
re-instantiation of [PMK+99] — the ablation the paper credits for much of
its advantage ("we use indexes to re-assign the worst variable with the best
value in its domain, while in [PMK+99] variables were re-assigned with
random values").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..faults import checkpoint_incumbent
from ..index.stats import index_work_since, node_reads_probe, snapshot_trees
from ..obs import current
from ..query import ProblemInstance
from .best_value import find_best_value
from .budget import Budget
from .evaluator import QueryEvaluator
from .result import RunResult
from .solution import SolutionState

__all__ = ["ILSConfig", "indexed_local_search"]


@dataclass
class ILSConfig:
    """Tuning knobs of ILS (the algorithm itself is parameter-free).

    ``use_index=False`` enables the [PMK+99]-style ablation: each
    improvement attempt draws ``random_tries`` random candidate values for
    the variable and keeps the best one that strictly improves it.
    """

    use_index: bool = True
    random_tries: int = 8
    stop_on_exact: bool = True

    def __post_init__(self) -> None:
        if self.random_tries < 1:
            raise ValueError(f"random_tries must be >= 1, got {self.random_tries}")


def indexed_local_search(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random = 0,
    config: ILSConfig | None = None,
    evaluator: QueryEvaluator | None = None,
    warm_start: Sequence[int] | None = None,
) -> RunResult:
    """Run ILS within ``budget``; one budget *iteration* = one improvement
    attempt (one ``find_best_value`` call or random-sample round).

    ``warm_start`` seeds the *first* restart with a given assignment instead
    of a random one (later restarts stay random).  Because the warm state is
    recorded as incumbent before any climbing, a warm-started run can never
    report a worse answer than the assignment it was given.
    """
    config = config or ILSConfig()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    evaluator = evaluator or QueryEvaluator(instance)
    warm_values = evaluator.validated_warm_start(warm_start)
    obs = current()
    baseline = snapshot_trees(evaluator.trees)
    probe = node_reads_probe(evaluator.trees)
    budget.start()

    trace = obs.convergence_trace()
    best_values: tuple[int, ...] | None = None
    best_violations = evaluator.num_constraints + 1
    local_maxima = 0
    restarts = 0
    iterations = 0

    def note_if_best(state: SolutionState) -> None:
        nonlocal best_values, best_violations
        if state.violations < best_violations:
            best_violations = state.violations
            best_values = state.as_tuple()
            trace.record(
                budget.elapsed(), iterations, best_violations, state.similarity
            )
            checkpoint_incumbent(
                best_values, best_violations, state.similarity,
                budget.elapsed(), iterations,
            )

    done = False
    with obs.span("ils.run", io=probe):
        while not done and not budget.exhausted():
            obs.event("restart", index=restarts)
            obs.counter("ils.restarts").inc()
            restarts += 1
            seeded_warm = False
            with obs.span("ils.seed"):
                if warm_values is not None:
                    state = evaluator.make_state(warm_values)
                    warm_values = None
                    seeded_warm = True
                else:
                    state = evaluator.random_state(rng)
            note_if_best(state)
            if seeded_warm and config.stop_on_exact and state.is_exact:
                break
            # climb to a local maximum
            with obs.span("ils.climb", io=probe):
                while not done:
                    improved = _improve_once(state, evaluator, config, rng)
                    iterations += 1
                    budget.tick()
                    if improved:
                        note_if_best(state)
                        if config.stop_on_exact and state.is_exact:
                            done = True
                    else:
                        local_maxima += 1
                        obs.counter("ils.local_maxima").inc()
                        obs.event("local_maximum", violations=state.violations)
                        break
                    if budget.exhausted():
                        done = True

    index_work = index_work_since(evaluator.trees, baseline)
    obs.absorb_index_work(index_work)
    return RunResult(
        algorithm="ILS" if config.use_index else "LS-random",
        best_assignment=best_values if best_values is not None else (),
        best_violations=best_violations,
        best_similarity=evaluator.similarity(best_violations),
        elapsed=budget.elapsed(),
        iterations=iterations,
        milestones=local_maxima,
        trace=trace,
        stats={
            "local_maxima": local_maxima,
            "restarts": restarts,
            "index": index_work,
        },
    )


def _improve_once(
    state: SolutionState,
    evaluator: QueryEvaluator,
    config: ILSConfig,
    rng: random.Random,
) -> bool:
    """One ILS step: strictly improve some variable, worst-first.

    Returns ``False`` when no variable can be improved, i.e. the state is a
    local maximum.
    """
    for variable in state.worst_variable_order():
        if state.violated_count(variable) == 0:
            # variables are worst-first: the rest satisfy everything already
            break
        if config.use_index:
            if _improve_with_index(state, evaluator, variable):
                return True
        else:
            if _improve_with_random_tries(state, evaluator, variable, config, rng):
                return True
    return False


def _improve_with_index(
    state: SolutionState, evaluator: QueryEvaluator, variable: int
) -> bool:
    constraints = state.constraint_windows(variable)
    found = find_best_value(
        evaluator.trees[variable], constraints, floor_score=float(state.sat[variable])
    )
    if found is None:
        return False
    state.set_value(variable, found.item)
    return True


def _improve_with_random_tries(
    state: SolutionState,
    evaluator: QueryEvaluator,
    variable: int,
    config: ILSConfig,
    rng: random.Random,
) -> bool:
    """[PMK+99]-style move: sample random values, keep the best improving one."""
    rects = evaluator.rects[variable]
    constraints = state.constraint_windows(variable)
    best_satisfied = state.sat[variable]
    best_candidate: int | None = None
    for _ in range(config.random_tries):
        candidate = rng.randrange(len(rects))
        rect = rects[candidate]
        satisfied = sum(
            1 for predicate, window in constraints if predicate.test(rect, window)
        )
        if satisfied > best_satisfied:
            best_satisfied = satisfied
            best_candidate = candidate
    if best_candidate is None:
        return False
    state.set_value(variable, best_candidate)
    return True
