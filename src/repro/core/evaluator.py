"""Query evaluation: violation counting over candidate solutions.

Bridges the query model and the search algorithms: given a
:class:`~repro.query.hardness.ProblemInstance`, the evaluator answers "how
many join conditions does this tuple violate?" — the *inconsistency degree*
that all of the paper's heuristics minimise — and produces the mutable
:class:`~repro.core.solution.SolutionState` objects they climb on.
"""

from __future__ import annotations

import random

from ..geometry import Rect, SpatialPredicate
from ..index import RStarTree
from ..query import ProblemInstance
from .solution import SolutionState

__all__ = ["QueryEvaluator"]


class QueryEvaluator:
    """Precomputed adjacency + rectangle tables for fast violation counting."""

    def __init__(self, instance: ProblemInstance):
        if not instance.query.is_connected():
            raise ValueError(
                "disconnected query graphs are Cartesian products; "
                "join each connected component separately"
            )
        self.instance = instance
        self.query = instance.query
        self.num_variables = instance.query.num_variables
        self.num_constraints = instance.query.num_edges
        #: rects[i][oid] — the MBR of object ``oid`` of dataset ``i``
        self.rects: list[list[Rect]] = [dataset.rects for dataset in instance.datasets]
        self.trees: list[RStarTree] = [dataset.tree for dataset in instance.datasets]
        #: neighbors[i] — list of ``(j, predicate oriented from i)``
        self.neighbors: list[list[tuple[int, SpatialPredicate]]] = [
            sorted(instance.query.neighbors(i).items())
            for i in range(self.num_variables)
        ]
        self.degrees = [len(adjacent) for adjacent in self.neighbors]

    # ------------------------------------------------------------------
    # pointwise checks
    # ------------------------------------------------------------------
    def pair_satisfied(self, i: int, object_i: int, j: int, object_j: int) -> bool:
        """Does the join condition between ``i`` and ``j`` hold for these objects?"""
        predicate = self.query.predicate(i, j)
        return predicate.test(self.rects[i][object_i], self.rects[j][object_j])

    def count_violations(self, values: list[int] | tuple[int, ...]) -> int:
        """Inconsistency degree: number of violated join conditions."""
        violations = 0
        rects = self.rects
        for i, j, predicate in self.query.edges():
            if not predicate.test(rects[i][values[i]], rects[j][values[j]]):
                violations += 1
        return violations

    def satisfied_counts(self, values: list[int] | tuple[int, ...]) -> list[int]:
        """Per-variable count of *satisfied* incident join conditions."""
        counts = [0] * self.num_variables
        rects = self.rects
        for i, j, predicate in self.query.edges():
            if predicate.test(rects[i][values[i]], rects[j][values[j]]):
                counts[i] += 1
                counts[j] += 1
        return counts

    def similarity(self, violations: int) -> float:
        """The paper's normalised measure: ``1 − violated / total``."""
        return 1.0 - violations / self.num_constraints

    # ------------------------------------------------------------------
    # solution construction
    # ------------------------------------------------------------------
    def random_values(self, rng: random.Random) -> list[int]:
        """A uniformly random assignment (the *seed* of local search)."""
        return [rng.randrange(len(rects)) for rects in self.rects]

    def make_state(self, values: list[int]) -> SolutionState:
        """Wrap an assignment in an incrementally-maintained state."""
        return SolutionState(self, list(values))

    def random_state(self, rng: random.Random) -> SolutionState:
        return self.make_state(self.random_values(rng))
