"""Query evaluation: violation counting over candidate solutions.

Bridges the query model and the search algorithms: given a
:class:`~repro.query.hardness.ProblemInstance`, the evaluator answers "how
many join conditions does this tuple violate?" — the *inconsistency degree*
that all of the paper's heuristics minimise — and produces the mutable
:class:`~repro.core.solution.SolutionState` objects they climb on.

Single-assignment checks (``count_violations``) stay scalar — an assignment
touches only ``E`` edges and NumPy dispatch would cost more than it saves —
but everything population-shaped is vectorized through the columnar kernels:
:meth:`QueryEvaluator.count_violations_batch` and
:meth:`QueryEvaluator.satisfied_counts_batch` evaluate a whole matrix of
assignments with one gather + one predicate kernel per query edge, which is
what SEA's population construction and the benchmark suite use.
``use_kernels=False`` keeps every path object-at-a-time for oracle testing.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

from ..geometry import Rect, RectColumns, SpatialPredicate
from ..geometry.kernels import test_pairs
from ..index import RStarTree
from ..obs import current
from ..query import ProblemInstance
from .solution import SolutionState

__all__ = ["QueryEvaluator"]


class QueryEvaluator:
    """Precomputed adjacency + rectangle tables for fast violation counting."""

    def __init__(self, instance: ProblemInstance, use_kernels: bool = True):
        if not instance.query.is_connected():
            raise ValueError(
                "disconnected query graphs are Cartesian products; "
                "join each connected component separately"
            )
        self.instance = instance
        self.query = instance.query
        self.use_kernels = use_kernels
        self.num_variables = instance.query.num_variables
        self.num_constraints = instance.query.num_edges
        #: rects[i][oid] — the MBR of object ``oid`` of dataset ``i``
        self.rects: list[list[Rect]] = [dataset.rects for dataset in instance.datasets]
        self.trees: list[RStarTree] = [dataset.tree for dataset in instance.datasets]
        #: columns[i] — columnar view of dataset ``i`` (shared with the dataset)
        self.columns: list[RectColumns] = [
            dataset.columns for dataset in instance.datasets
        ]
        #: neighbors[i] — list of ``(j, predicate oriented from i)``
        self.neighbors: list[list[tuple[int, SpatialPredicate]]] = [
            sorted(instance.query.neighbors(i).items())
            for i in range(self.num_variables)
        ]
        self.degrees = [len(adjacent) for adjacent in self.neighbors]

    # ------------------------------------------------------------------
    # pointwise checks
    # ------------------------------------------------------------------
    def pair_satisfied(self, i: int, object_i: int, j: int, object_j: int) -> bool:
        """Does the join condition between ``i`` and ``j`` hold for these objects?"""
        predicate = self.query.predicate(i, j)
        return predicate.test(self.rects[i][object_i], self.rects[j][object_j])

    def count_violations(self, values: list[int] | tuple[int, ...]) -> int:
        """Inconsistency degree: number of violated join conditions."""
        obs = current()
        if obs.enabled:  # one attribute check when observation is off
            obs.counter("eval.violation_checks").inc()
        violations = 0
        rects = self.rects
        for i, j, predicate in self.query.edges():
            if not predicate.test(rects[i][values[i]], rects[j][values[j]]):
                violations += 1
        return violations

    def satisfied_counts(self, values: list[int] | tuple[int, ...]) -> list[int]:
        """Per-variable count of *satisfied* incident join conditions."""
        counts = [0] * self.num_variables
        rects = self.rects
        for i, j, predicate in self.query.edges():
            if predicate.test(rects[i][values[i]], rects[j][values[j]]):
                counts[i] += 1
                counts[j] += 1
        return counts

    def similarity(self, violations: int) -> float:
        """The paper's normalised measure: ``1 − violated / total``."""
        return 1.0 - violations / self.num_constraints

    # ------------------------------------------------------------------
    # batched checks (columnar kernels)
    # ------------------------------------------------------------------
    def _edge_masks(self, values: np.ndarray):
        """Per query edge, the satisfied mask over a ``(k, n)`` value matrix."""
        columns = self.columns
        for i, j, predicate in self.query.edges():
            rows_i = columns[i].take(values[:, i])
            rows_j = columns[j].take(values[:, j])
            mask = test_pairs(predicate, rows_i, rows_j)
            if mask is None:  # exotic predicate: scalar fallback per row
                rects_i, rects_j = self.rects[i], self.rects[j]
                mask = np.fromiter(
                    (
                        predicate.test(rects_i[int(a)], rects_j[int(b)])
                        for a, b in zip(values[:, i], values[:, j])
                    ),
                    dtype=bool,
                    count=len(values),
                )
            yield i, j, mask

    def count_violations_batch(
        self, values: Sequence[Sequence[int]] | np.ndarray
    ) -> np.ndarray:
        """Inconsistency degree of every row of a ``(k, n)`` value matrix.

        Vectorized per edge: one fancy-indexed gather of both endpoint
        columns and one predicate kernel over all ``k`` assignments.
        Equals ``[count_violations(row) for row in values]`` exactly.
        """
        matrix = np.asarray(values, dtype=np.intp)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_variables:
            raise ValueError(
                f"expected a (k, {self.num_variables}) value matrix, "
                f"got shape {matrix.shape}"
            )
        obs = current()
        if obs.enabled:
            obs.counter("eval.batch_rows").inc(len(matrix))
        if not self.use_kernels:
            return np.array(
                [self.count_violations(row) for row in matrix.tolist()], dtype=np.intp
            )
        violations = np.zeros(len(matrix), dtype=np.intp)
        for _i, _j, mask in self._edge_masks(matrix):
            violations += ~mask
        return violations

    def satisfied_counts_batch(
        self, values: Sequence[Sequence[int]] | np.ndarray
    ) -> np.ndarray:
        """Per-variable satisfied counts for every row: shape ``(k, n)``."""
        matrix = np.asarray(values, dtype=np.intp)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_variables:
            raise ValueError(
                f"expected a (k, {self.num_variables}) value matrix, "
                f"got shape {matrix.shape}"
            )
        if not self.use_kernels:
            return np.array(
                [self.satisfied_counts(row) for row in matrix.tolist()], dtype=np.intp
            )
        counts = np.zeros(matrix.shape, dtype=np.intp)
        for i, j, mask in self._edge_masks(matrix):
            counts[:, i] += mask
            counts[:, j] += mask
        return counts

    # ------------------------------------------------------------------
    # solution construction
    # ------------------------------------------------------------------
    def random_values(self, rng: random.Random) -> list[int]:
        """A uniformly random assignment (the *seed* of local search)."""
        return [rng.randrange(len(rects)) for rects in self.rects]

    def make_state(self, values: list[int]) -> SolutionState:
        """Wrap an assignment in an incrementally-maintained state."""
        return SolutionState(self, list(values))

    def make_states(self, values_list: Sequence[Sequence[int]]) -> list[SolutionState]:
        """Wrap many assignments at once, sharing one batched count pass."""
        values_list = [list(values) for values in values_list]
        if not values_list:
            return []
        if not self.use_kernels:
            return [self.make_state(values) for values in values_list]
        counts = self.satisfied_counts_batch(values_list)
        return [
            SolutionState.from_counts(self, values, row)
            for values, row in zip(values_list, counts.tolist())
        ]

    def validated_warm_start(
        self, warm_start: Sequence[int] | None
    ) -> list[int] | None:
        """``warm_start`` as a checked value list, or ``None``.

        A warm start is an ordinary assignment handed in from outside the
        search (a translated cache entry, a prior incumbent); it must have
        one in-domain object id per query variable.
        """
        if warm_start is None:
            return None
        values = [int(value) for value in warm_start]
        if len(values) != self.num_variables:
            raise ValueError(
                f"warm start has {len(values)} values for "
                f"{self.num_variables} variables"
            )
        for variable, value in enumerate(values):
            domain = len(self.rects[variable])
            if not 0 <= value < domain:
                raise ValueError(
                    f"warm start value {value} outside domain of variable "
                    f"{variable} (size {domain})"
                )
        return values

    def random_state(self, rng: random.Random) -> SolutionState:
        return self.make_state(self.random_values(rng))

    def random_states(self, rng: random.Random, count: int) -> list[SolutionState]:
        """``count`` random states, batch-evaluated.

        Draws from ``rng`` in exactly the same order as ``count`` successive
        :meth:`random_state` calls, so seeded runs are reproducible across
        the scalar and batched construction paths.
        """
        values_list = [self.random_values(rng) for _ in range(count)]
        return self.make_states(values_list)
