"""Process-parallel execution of independent search runs.

The paper's heuristics are embarrassingly parallel across *restarts*: two
ILS/GILS/SEA runs with different seeds share nothing but the (read-only)
problem instance.  This module exploits that with a
:class:`~concurrent.futures.ProcessPoolExecutor`: the instance is shipped to
each worker once (pool initializer, not per task), every restart runs the
full vectorized kernel stack on its own core, and the reduction keeps the
best solution found by any member.

Determinism
-----------
Each member's seed is *derived* — a BLAKE2b hash of ``(base seed, member
index)`` — so a member's trajectory depends only on its index, never on
which worker ran it or in which order results arrived.  Ties between members
are broken by member index.  Consequently, for iteration-limited budgets,
``parallel_restarts(seed=k, workers=n)`` returns the same best assignment
for every ``n`` (including the inline ``workers=1`` path); wall-clock
budgets remain timing-dependent, exactly as in sequential runs.

Everything crossing the process boundary is a plain picklable payload:
:class:`RunSpec` carries the heuristic *name* (looked up in
:data:`repro.core.two_step.HEURISTICS` inside the worker) and raw budget
limits, never callables or live ``Budget`` objects.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..obs import Observation, collect_exports, current, export_state, merge_states, observe, replay_into
from ..query import ProblemInstance
from .budget import Budget, Stopwatch
from .evaluator import QueryEvaluator
from .result import ConvergenceTrace, RunResult

__all__ = ["RunSpec", "derive_seed", "default_workers", "parallel_restarts", "run_specs"]


def derive_seed(base_seed: int, index: int) -> int:
    """A stable 64-bit seed for member ``index`` of a run seeded ``base_seed``.

    Hash-derived (BLAKE2b) rather than ``base_seed + index`` so that member
    streams are decorrelated and independent of Python's salted ``hash``.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def default_workers() -> int:
    """Worker count used when ``workers=None``: one per available core."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of work: a heuristic, a seed and budget limits."""

    heuristic: str
    seed: int
    time_limit: float | None
    max_iterations: int | None
    index: int

    def budget(self) -> Budget:
        return Budget(time_limit=self.time_limit, max_iterations=self.max_iterations)


# Per-process state: the instance and its evaluator are materialised once per
# worker (pool initializer) instead of once per task, so shipping a large
# instance costs one pickle per core, not one per restart.
_WORKER_INSTANCE: ProblemInstance | None = None
_WORKER_EVALUATOR: QueryEvaluator | None = None
_WORKER_OBSERVE: bool = False


def _init_worker(
    instance: ProblemInstance, use_kernels: bool, observe_members: bool = False
) -> None:
    global _WORKER_INSTANCE, _WORKER_EVALUATOR, _WORKER_OBSERVE
    _WORKER_INSTANCE = instance
    _WORKER_EVALUATOR = QueryEvaluator(instance, use_kernels=use_kernels)
    _WORKER_OBSERVE = observe_members


def _run_spec_in_worker(spec: RunSpec) -> RunResult:
    assert _WORKER_INSTANCE is not None and _WORKER_EVALUATOR is not None
    return _observed_spec_run(
        spec, _WORKER_INSTANCE, _WORKER_EVALUATOR, _WORKER_OBSERVE
    )


def _observed_spec_run(
    spec: RunSpec,
    instance: ProblemInstance,
    evaluator: QueryEvaluator,
    observe_members: bool,
) -> RunResult:
    """Run one spec, optionally under a fresh per-member observation.

    The member's metrics and events are exported as a picklable payload in
    ``result.stats["obs"]``; the parent pops and merges these (see
    :mod:`repro.obs.aggregate`).  Used identically by the inline path and
    the pool workers so merged output is worker-count independent.
    """
    if not observe_members:
        return _execute_spec(spec, instance, evaluator)
    with observe(Observation()) as member_observation:
        result = _execute_spec(spec, instance, evaluator)
    result.stats["obs"] = export_state(member_observation)
    return result


def _execute_spec(
    spec: RunSpec, instance: ProblemInstance, evaluator: QueryEvaluator
) -> RunResult:
    from .two_step import HEURISTICS  # local import: avoids a module cycle

    try:
        runner = HEURISTICS[spec.heuristic]
    except KeyError:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(
            f"unknown heuristic {spec.heuristic!r}; known: {known}"
        ) from None
    return runner(instance, spec.budget(), spec.seed, evaluator)


def run_specs(
    instance: ProblemInstance,
    specs: list[RunSpec],
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
    observe_members: bool | None = None,
) -> list[RunResult]:
    """Execute ``specs`` and return their results in spec order.

    ``workers=1`` (or a single spec) runs inline in this process — no pool,
    no pickling — which is also the reference behaviour the determinism
    tests compare multi-worker runs against.

    ``observe_members=None`` observes members exactly when the calling
    process has an active observation; each member then ships its metrics
    and events back in ``result.stats["obs"]``.
    """
    workers = default_workers() if workers is None else max(1, workers)
    if observe_members is None:
        observe_members = current().enabled
    if workers == 1 or len(specs) <= 1:
        evaluator = evaluator or QueryEvaluator(instance, use_kernels=use_kernels)
        return [
            _observed_spec_run(spec, instance, evaluator, observe_members)
            for spec in specs
        ]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(specs)),
        initializer=_init_worker,
        initargs=(instance, use_kernels, observe_members),
    ) as pool:
        return list(pool.map(_run_spec_in_worker, specs))


def parallel_restarts(
    instance: ProblemInstance,
    budget: Budget,
    seed: int = 0,
    heuristic: str = "sea",
    restarts: int = 4,
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
) -> RunResult:
    """Best-of-``restarts`` independent runs of one heuristic.

    Every member receives a fresh budget with the *same* limits (members run
    concurrently, so the wall-clock cost is one member's budget, not their
    sum) and the seed ``derive_seed(seed, index)``.  The returned result is
    the member with the fewest violations — ties broken by member index —
    with the members' traces merged into one monotone staircase and their
    summaries kept under ``stats["members"]``.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    specs = [
        RunSpec(
            heuristic=heuristic,
            seed=derive_seed(seed, index),
            time_limit=budget.time_limit,
            max_iterations=budget.max_iterations,
            index=index,
        )
        for index in range(restarts)
    ]
    obs = current()
    watch = Stopwatch()
    with obs.span("parallel.run"):
        results = run_specs(instance, specs, workers, evaluator, use_kernels)
    elapsed = watch.elapsed()

    stats: dict[str, object] = {"restarts": restarts}
    if obs.enabled:
        payloads = collect_exports([result.stats for result in results])
        merged_members = merge_states(payloads)
        replay_into(obs, merged_members)
        obs.counter("parallel.members").inc(len(results))
        stats["obs"] = {
            "members": merged_members["members"],
            "metrics": merged_members["metrics"],
            "events": len(merged_members["events"]),
        }

    best = min(enumerate(results), key=lambda pair: (pair[1].best_violations, pair[0]))
    winner_index, winner = best
    merged = _merge_concurrent_traces(results)
    stats["members"] = [member_stats(result) for result in results]
    stats["winner"] = winner_index
    return RunResult(
        algorithm=f"parallel({heuristic}×{restarts})",
        best_assignment=winner.best_assignment,
        best_violations=winner.best_violations,
        best_similarity=winner.best_similarity,
        elapsed=elapsed,
        iterations=sum(result.iterations for result in results),
        milestones=sum(result.milestones for result in results),
        trace=merged,
        stats=stats,
    )


def member_stats(result: RunResult) -> dict[str, object]:
    """Structured per-member digest kept under ``stats["members"]``.

    Includes the member's R*-tree work (``stats["index"]``, a
    :meth:`TreeStats.snapshot`-shaped delta) so parallel summaries account
    for index accesses, not just wall time.
    """
    return {
        "algorithm": result.algorithm,
        "violations": result.best_violations,
        "similarity": result.best_similarity,
        "iterations": result.iterations,
        "elapsed": result.elapsed,
        "index": result.stats.get("index"),
    }


def _merge_concurrent_traces(results: list[RunResult]) -> ConvergenceTrace:
    """Merge concurrent member traces into one improving staircase.

    Members run on a common wall clock, so points are interleaved by
    ``elapsed`` and only kept while they improve on everything seen earlier.
    """
    merged = ConvergenceTrace()
    points = sorted(
        (point for result in results for point in result.trace.points),
        key=lambda point: (point.elapsed, point.violations),
    )
    best = None
    for point in points:
        if best is None or point.violations < best:
            best = point.violations
            merged.record(
                point.elapsed, point.iterations, point.violations, point.similarity
            )
    return merged
