"""Process-parallel execution of independent search runs, with supervision.

The paper's heuristics are embarrassingly parallel across *restarts*: two
ILS/GILS/SEA runs with different seeds share nothing but the (read-only)
problem instance.  This module exploits that with a
:class:`~concurrent.futures.ProcessPoolExecutor`: the instance is shipped to
each worker once (pool initializer, not per task), every restart runs the
full vectorized kernel stack on its own core, and the reduction keeps the
best solution found by any member.

Determinism
-----------
Each member's seed is *derived* — a BLAKE2b hash of ``(base seed, member
index)`` — so a member's trajectory depends only on its index, never on
which worker ran it or in which order results arrived.  Ties between members
are broken by member index.  Consequently, for iteration-limited budgets,
``parallel_restarts(seed=k, workers=n)`` returns the same best assignment
for every ``n`` (including the inline ``workers=1`` path); wall-clock
budgets remain timing-dependent, exactly as in sequential runs.

Supervision
-----------
Member execution is supervised: a worker crash (``BrokenProcessPool``), a
hang (no completion within :attr:`SupervisionPolicy.hang_timeout`), an
injected error, or a corrupt result loses only the *unfinished* members.
Those members are re-dispatched — to the same pool when it survived, to a
rebuilt pool (bounded by :attr:`SupervisionPolicy.max_rebuilds`, with
exponential backoff) when it did not.  A retried member re-runs from its
derived seed, so recovery never perturbs worker-count-independent
determinism.  While fault injection is active (or ``checkpoints=True``),
members stream incumbent improvements back through a manager queue via
:func:`repro.faults.checkpoint_incumbent`; a member whose retries are
exhausted is synthesised from its best checkpoint, so
:func:`parallel_restarts` returns the best solution observed *before* the
fault — never nothing.  Any recovery activity is reported under
``stats["faults"]`` and the ``faults.*`` counters.

Everything crossing the process boundary is a plain picklable payload:
:class:`RunSpec` carries the heuristic *name* (looked up in
:data:`repro.core.two_step.HEURISTICS` inside the worker) and raw budget
limits, never callables or live ``Budget`` objects.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as queue_module
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Sequence

from ..faults import (
    SITE_MEMBER_PROGRESS,
    SITE_MEMBER_RESULT,
    SITE_MEMBER_START,
    FaultPlan,
    InjectedCrash,
    InjectedError,
    activate_plan,
    active_plan,
    checkpointing,
    corruption_at,
    fault_point,
    inject,
)
from ..obs import Observation, collect_exports, current, export_state, merge_states, observe, replay_into
from ..query import ProblemInstance
from .budget import Budget, Stopwatch
from .evaluator import QueryEvaluator
from .result import ConvergenceTrace, RunResult

__all__ = [
    "RunSpec",
    "SupervisionPolicy",
    "derive_seed",
    "default_workers",
    "parallel_restarts",
    "run_specs",
    "run_specs_supervised",
]

#: violations sentinel for a member lost beyond recovery: large enough to
#: lose every reduction, finite so payloads stay JSON-friendly
LOST_MEMBER_VIOLATIONS = 2**31

#: exit code of a worker process killed by an injected crash
CRASH_EXIT_CODE = 17


def derive_seed(base_seed: int, index: int) -> int:
    """A stable 64-bit seed for member ``index`` of a run seeded ``base_seed``.

    Hash-derived (BLAKE2b) rather than ``base_seed + index`` so that member
    streams are decorrelated and independent of Python's salted ``hash``.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def default_workers() -> int:
    """Worker count used when ``workers=None``: one per available core."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of work: a heuristic, a seed and budget limits."""

    heuristic: str
    seed: int
    time_limit: float | None
    max_iterations: int | None
    index: int
    #: optional starting incumbent (requester numbering) seeding the search
    warm_start: tuple[int, ...] | None = None

    def budget(self) -> Budget:
        return Budget(time_limit=self.time_limit, max_iterations=self.max_iterations)


@dataclass(frozen=True)
class SupervisionPolicy:
    """How member failures are detected and retried.

    ``member_retries``
        Re-dispatches any one member may consume (injected or real).  A
        member beyond this is synthesised from its best checkpoint (or a
        lost-member sentinel) instead of failing the whole run.
    ``max_rebuilds``
        Pool rebuilds (after a crash or hang) before giving up on the
        members still unfinished.
    ``backoff_base`` / ``backoff_cap``
        Exponential backoff slept before each rebuild:
        ``min(cap, base · 2^(rebuild-1))`` seconds.
    ``hang_timeout``
        Hang detection: when *no* member completes within this many
        seconds, the pool is declared wedged, its processes are
        terminated, and unfinished members are re-dispatched.  ``None``
        (the default) disables detection — correct for wall-clock budgets
        where "no news for a while" is normal.
    """

    member_retries: int = 2
    max_rebuilds: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    hang_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.member_retries < 0:
            raise ValueError(f"member_retries must be >= 0, got {self.member_retries}")
        if self.max_rebuilds < 0:
            raise ValueError(f"max_rebuilds must be >= 0, got {self.max_rebuilds}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be non-negative")
        if self.hang_timeout is not None and self.hang_timeout <= 0:
            raise ValueError(f"hang_timeout must be positive, got {self.hang_timeout}")

    def backoff(self, rebuild: int) -> float:
        return min(self.backoff_cap, self.backoff_base * (2.0 ** max(0, rebuild - 1)))


@dataclass(frozen=True)
class _MemberTask:
    """One dispatch of one member: the spec plus its retry attempt."""

    spec: RunSpec
    attempt: int


class _PoolHang(RuntimeError):
    """No member completed within the supervision hang timeout."""


#: checkpoint payload: (violations, similarity, values, elapsed, iterations)
_Checkpoint = tuple[int, float, tuple[int, ...], float, int]


class _CheckpointRecorder:
    """Receives :func:`checkpoint_incumbent` calls for one member attempt.

    Forwards every improvement to the recovery channel (an in-process
    store inline, a manager queue inside pool workers) *before* firing the
    ``parallel.member.progress`` fault site, so a crash injected at the
    k-th improvement finds the first k already published.
    """

    __slots__ = ("index", "attempt", "store", "sink", "hits")

    def __init__(
        self,
        index: int,
        attempt: int,
        store: dict[int, _Checkpoint] | None = None,
        sink: Any = None,
    ) -> None:
        self.index = index
        self.attempt = attempt
        self.store = store
        self.sink = sink
        self.hits = 0

    def __call__(
        self,
        values: Sequence[int],
        violations: int,
        similarity: float,
        elapsed: float,
        iterations: int,
    ) -> None:
        self.hits += 1
        checkpoint: _Checkpoint = (
            int(violations), float(similarity), tuple(values), float(elapsed),
            int(iterations),
        )
        if self.store is not None:
            _keep_best_checkpoint(self.store, self.index, checkpoint)
        if self.sink is not None:
            self.sink.put((self.index,) + checkpoint)
        fault_point(
            SITE_MEMBER_PROGRESS, index=self.index, attempt=self.attempt, hit=self.hits
        )


def _keep_best_checkpoint(
    store: dict[int, _Checkpoint], index: int, checkpoint: _Checkpoint
) -> None:
    best = store.get(index)
    if best is None or checkpoint[0] < best[0]:
        store[index] = checkpoint


class _FaultLedger:
    """Accumulates recovery activity for ``stats["faults"]`` and obs."""

    def __init__(self) -> None:
        self.counts = {
            "crashes": 0,
            "hangs": 0,
            "corruptions": 0,
            "errors": 0,
            "retries": 0,
            "rebuilds": 0,
        }
        self.events: list[dict[str, Any]] = []
        self.recovered_members: list[int] = []
        self.lost_members: list[int] = []

    _KIND_COUNTS = {
        "crash": "crashes",
        "hang": "hangs",
        "corrupt": "corruptions",
        "error": "errors",
    }

    def record(self, kind: str, members: Sequence[int], attempt: int) -> None:
        self.counts[self._KIND_COUNTS[kind]] += 1
        self.events.append(
            {"kind": kind, "members": sorted(members), "attempt": attempt}
        )

    def any(self) -> bool:
        return bool(self.events) or any(self.counts.values())

    def report(self) -> dict[str, Any]:
        report: dict[str, Any] = dict(self.counts)
        report["events"] = list(self.events)
        report["recovered_members"] = sorted(self.recovered_members)
        report["lost_members"] = sorted(self.lost_members)
        return report


# Per-process state: the instance and its evaluator are materialised once per
# worker (pool initializer) instead of once per task, so shipping a large
# instance costs one pickle per core, not one per restart.
_WORKER_INSTANCE: ProblemInstance | None = None
_WORKER_EVALUATOR: QueryEvaluator | None = None
_WORKER_OBSERVE: bool = False
_WORKER_CHECKPOINTS: Any = None


def _init_worker(
    instance: ProblemInstance | None,
    use_kernels: bool,
    observe_members: bool = False,
    fault_plan: dict[str, Any] | None = None,
    checkpoint_queue: Any = None,
    warm: Any = None,
) -> None:
    """Pool initializer; ``warm`` (a :class:`~repro.warm.plane.WarmInstanceSpec`)
    replaces the pickled ``instance`` with an attach to published shared
    memory — the attach-don't-rebuild path of the warm plane.  Pool rebuilds
    reuse the same initargs, so recovered workers re-attach to the *same*
    segments; nothing is re-published."""
    global _WORKER_INSTANCE, _WORKER_EVALUATOR, _WORKER_OBSERVE, _WORKER_CHECKPOINTS
    if instance is None:
        assert warm is not None, "pool initializer needs an instance or a warm spec"
        from ..warm.plane import attach_instance  # local: warm/ is optional here

        instance = attach_instance(warm)
    _WORKER_INSTANCE = instance
    _WORKER_EVALUATOR = QueryEvaluator(instance, use_kernels=use_kernels)
    _WORKER_OBSERVE = observe_members
    _WORKER_CHECKPOINTS = checkpoint_queue
    activate_plan(FaultPlan.from_dict(fault_plan))


def _run_member_in_worker(task: _MemberTask) -> RunResult:
    """Pool-worker entry point for one supervised member dispatch.

    An injected crash becomes a genuine dead process (``os._exit``) so the
    parent exercises the real ``BrokenProcessPool`` recovery path, not a
    simulation of it.
    """
    assert _WORKER_INSTANCE is not None and _WORKER_EVALUATOR is not None
    spec, attempt = task.spec, task.attempt
    try:
        recorder: _CheckpointRecorder | None = None
        if _WORKER_CHECKPOINTS is not None or active_plan() is not None:
            recorder = _CheckpointRecorder(
                spec.index, attempt, sink=_WORKER_CHECKPOINTS
            )
        with checkpointing(recorder):
            fault_point(SITE_MEMBER_START, index=spec.index, attempt=attempt)
            result = _observed_spec_run(
                spec, _WORKER_INSTANCE, _WORKER_EVALUATOR, _WORKER_OBSERVE
            )
        if corruption_at(SITE_MEMBER_RESULT, index=spec.index, attempt=attempt):
            result = replace(result, best_violations=-1)
        return result
    except InjectedCrash:
        os._exit(CRASH_EXIT_CODE)
        raise  # pragma: no cover - unreachable


def _observed_spec_run(
    spec: RunSpec,
    instance: ProblemInstance,
    evaluator: QueryEvaluator,
    observe_members: bool,
) -> RunResult:
    """Run one spec, optionally under a fresh per-member observation.

    The member's metrics and events are exported as a picklable payload in
    ``result.stats["obs"]``; the parent pops and merges these (see
    :mod:`repro.obs.aggregate`).  Used identically by the inline path and
    the pool workers so merged output is worker-count independent.
    """
    if not observe_members:
        return _execute_spec(spec, instance, evaluator)
    with observe(Observation()) as member_observation:
        result = _execute_spec(spec, instance, evaluator)
    result.stats["obs"] = export_state(member_observation)
    return result


def _execute_spec(
    spec: RunSpec, instance: ProblemInstance, evaluator: QueryEvaluator
) -> RunResult:
    from .two_step import HEURISTICS  # local import: avoids a module cycle

    try:
        runner = HEURISTICS[spec.heuristic]
    except KeyError:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(
            f"unknown heuristic {spec.heuristic!r}; known: {known}"
        ) from None
    if spec.warm_start is not None:
        return runner(
            instance, spec.budget(), spec.seed, evaluator, warm_start=spec.warm_start
        )
    return runner(instance, spec.budget(), spec.seed, evaluator)


def _result_is_valid(result: Any, num_variables: int) -> bool:
    """Structural validation applied to every member result.

    Catches corrupted payloads (injected or real): negative scores and
    assignments of the wrong arity can never come from a correct run.
    """
    if not isinstance(result, RunResult):
        return False
    if result.best_violations < 0 or result.iterations < 0:
        return False
    assignment = result.best_assignment
    return not assignment or len(assignment) == num_variables


def _result_from_checkpoint(spec: RunSpec, checkpoint: _Checkpoint) -> RunResult:
    """Synthesise a member's result from its best streamed incumbent."""
    violations, similarity, values, elapsed, iterations = checkpoint
    trace = ConvergenceTrace()
    trace.record(elapsed, iterations, violations, similarity)
    return RunResult(
        algorithm=f"{spec.heuristic}(checkpoint)",
        best_assignment=values,
        best_violations=violations,
        best_similarity=similarity,
        elapsed=elapsed,
        iterations=iterations,
        milestones=0,
        trace=trace,
        stats={"checkpoint": True},
    )


def _lost_member_result(spec: RunSpec) -> RunResult:
    """Sentinel result for a member lost beyond recovery (no checkpoint)."""
    return RunResult(
        algorithm=f"{spec.heuristic}(lost)",
        best_assignment=(),
        best_violations=LOST_MEMBER_VIOLATIONS,
        best_similarity=0.0,
        elapsed=0.0,
        iterations=0,
        milestones=0,
        trace=ConvergenceTrace(),
        stats={"lost": True},
    )


def _drain_checkpoints(sink: Any, store: dict[int, _Checkpoint]) -> None:
    if sink is None:
        return
    draining = True
    while draining:
        try:
            payload = sink.get_nowait()
        except queue_module.Empty:
            draining = False
        else:
            index = int(payload[0])
            _keep_best_checkpoint(store, index, tuple(payload[1:]))  # type: ignore[arg-type]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Abandon a broken or wedged pool without waiting on its workers."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None)
    if not processes:
        return
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # already gone / closed handle
            pass


# ----------------------------------------------------------------------
# supervised execution
# ----------------------------------------------------------------------
def _supervised_inline_run(
    instance: ProblemInstance,
    specs: list[RunSpec],
    evaluator: QueryEvaluator,
    observe_members: bool,
    plan: FaultPlan | None,
    policy: SupervisionPolicy,
    want_checkpoints: bool,
    ledger: _FaultLedger,
    checkpoints: dict[int, _Checkpoint],
) -> dict[int, RunResult]:
    """Reference single-process path with the same recovery semantics.

    Hang faults cannot be interrupted without a second thread of control,
    so inline they degrade to ``slow``; every other fault kind retries and
    checkpoint-recovers exactly like the pool path.
    """
    results: dict[int, RunResult] = {}
    # the plan may have been passed explicitly rather than ambiently; the
    # hooks read process-global state, so (re-)activate it for the run
    with inject(plan):
        for spec in specs:
            # bounded retry loop, not a search loop: one clean attempt plus
            # member_retries re-runs; exhausted members are synthesised from
            # checkpoints by the caller
            for attempt in range(policy.member_retries + 1):
                recorder: _CheckpointRecorder | None = None
                if want_checkpoints or plan is not None:
                    recorder = _CheckpointRecorder(
                        spec.index, attempt, store=checkpoints
                    )
                failure: str | None = None
                try:
                    with checkpointing(recorder):
                        fault_point(
                            SITE_MEMBER_START, index=spec.index, attempt=attempt
                        )
                        result = _observed_spec_run(
                            spec, instance, evaluator, observe_members
                        )
                    if corruption_at(
                        SITE_MEMBER_RESULT, index=spec.index, attempt=attempt
                    ) or not _result_is_valid(result, instance.num_variables):
                        failure = "corrupt"
                except InjectedCrash:
                    failure = "crash"
                except InjectedError:
                    failure = "error"
                if failure is None:
                    results[spec.index] = result
                    break
                ledger.record(failure, [spec.index], attempt)
                if attempt < policy.member_retries:
                    ledger.counts["retries"] += 1
    return results


def _supervised_pool_run(
    instance: ProblemInstance,
    specs: list[RunSpec],
    workers: int,
    use_kernels: bool,
    observe_members: bool,
    plan: FaultPlan | None,
    policy: SupervisionPolicy,
    want_checkpoints: bool,
    ledger: _FaultLedger,
    checkpoints: dict[int, _Checkpoint],
    warm: Any = None,
) -> dict[int, RunResult]:
    """Run specs on a supervised process pool; returns completed results.

    Members missing from the returned mapping exhausted their retries (or
    the rebuild budget ran out); the caller synthesises them from
    checkpoints.
    """
    spec_by_index = {spec.index: spec for spec in specs}
    attempts = {spec.index: 0 for spec in specs}
    exhausted: set[int] = set()
    results: dict[int, RunResult] = {}
    plan_payload = plan.to_dict() if plan is not None else None

    manager = None
    sink = None
    if want_checkpoints:
        # a Manager queue proxy pickles through initargs (a raw
        # multiprocessing.Queue does not); the manager process is only paid
        # for when recovery is wanted
        manager = multiprocessing.Manager()
        sink = manager.Queue()

    rebuilds = 0
    try:
        todo = sorted(spec_by_index)
        while todo:
            # with a warm spec the instance never pickles through initargs:
            # workers attach to the published segments instead, and every
            # rebuild re-attaches to the same ones
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(todo)),
                initializer=_init_worker,
                initargs=(
                    None if warm is not None else instance,
                    use_kernels,
                    observe_members,
                    plan_payload,
                    sink,
                    warm,
                ),
            )
            failure: str | None = None
            try:
                futures = {
                    pool.submit(
                        _run_member_in_worker,
                        _MemberTask(spec_by_index[index], attempts[index]),
                    ): index
                    for index in todo
                }
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(
                        not_done,
                        timeout=policy.hang_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        raise _PoolHang()
                    crashed = False
                    for future in done:
                        index = futures.pop(future)
                        try:
                            result = future.result()
                        except BrokenExecutor:
                            crashed = True
                            continue
                        except InjectedError:
                            # raised inside a healthy worker: the pool
                            # survives, only this member retries
                            _retry_on_pool(
                                pool, futures, not_done, spec_by_index, attempts,
                                exhausted, policy, ledger, index, "error",
                            )
                            continue
                        if not _result_is_valid(result, instance.num_variables):
                            _retry_on_pool(
                                pool, futures, not_done, spec_by_index, attempts,
                                exhausted, policy, ledger, index, "corrupt",
                            )
                            continue
                        results[index] = result
                    if crashed:
                        raise BrokenExecutor("worker process died mid-run")
                pool.shutdown(wait=True)
            except BrokenExecutor:
                failure = "crash"
                _terminate_pool(pool)
            except _PoolHang:
                failure = "hang"
                _terminate_pool(pool)
            except BaseException:
                _terminate_pool(pool)
                raise
            if failure is not None:
                # -- pool-level failure: charge unfinished members, rebuild
                _drain_checkpoints(sink, checkpoints)
                unfinished = [
                    index
                    for index in todo
                    if index not in results and index not in exhausted
                ]
                ledger.record(failure, unfinished, rebuilds)
                for index in unfinished:
                    attempts[index] += 1
                    if attempts[index] > policy.member_retries:
                        exhausted.add(index)
                    else:
                        ledger.counts["retries"] += 1
                remaining = [
                    index for index in unfinished if index not in exhausted
                ]
                if remaining:
                    if rebuilds >= policy.max_rebuilds:
                        exhausted.update(remaining)
                        break
                    rebuilds += 1
                    ledger.counts["rebuilds"] += 1
                    backoff = policy.backoff(rebuilds)
                    if backoff > 0:
                        time.sleep(backoff)
            todo = [
                index
                for index in todo
                if index not in results and index not in exhausted
            ]
    finally:
        _drain_checkpoints(sink, checkpoints)
        if manager is not None:
            manager.shutdown()
    return results


def _retry_on_pool(
    pool: ProcessPoolExecutor,
    futures: dict[Any, int],
    not_done: set[Any],
    spec_by_index: dict[int, RunSpec],
    attempts: dict[int, int],
    exhausted: set[int],
    policy: SupervisionPolicy,
    ledger: _FaultLedger,
    index: int,
    kind: str,
) -> None:
    """Re-dispatch one faulted member onto the still-healthy pool."""
    ledger.record(kind, [index], attempts[index])
    attempts[index] += 1
    if attempts[index] > policy.member_retries:
        exhausted.add(index)
        return
    ledger.counts["retries"] += 1
    future = pool.submit(
        _run_member_in_worker, _MemberTask(spec_by_index[index], attempts[index])
    )
    futures[future] = index
    not_done.add(future)


def run_specs(
    instance: ProblemInstance,
    specs: list[RunSpec],
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
    observe_members: bool | None = None,
    fault_plan: FaultPlan | None = None,
    supervision: SupervisionPolicy | None = None,
    checkpoints: bool | None = None,
    warm: Any = None,
) -> list[RunResult]:
    """Execute ``specs`` and return their results in spec order.

    ``workers=1`` (or a single spec) runs inline in this process — no pool,
    no pickling — which is also the reference behaviour the determinism
    tests compare multi-worker runs against.

    ``observe_members=None`` observes members exactly when the calling
    process has an active observation; each member then ships its metrics
    and events back in ``result.stats["obs"]``.

    ``warm`` (a :class:`~repro.warm.plane.WarmInstanceSpec`) makes pool
    workers attach to published shared-memory segments instead of
    receiving the pickled ``instance``; the inline path ignores it (the
    caller already holds the instance).

    See :func:`run_specs_supervised` for the fault-handling parameters.
    """
    results, _ = run_specs_supervised(
        instance,
        specs,
        workers=workers,
        evaluator=evaluator,
        use_kernels=use_kernels,
        observe_members=observe_members,
        fault_plan=fault_plan,
        supervision=supervision,
        checkpoints=checkpoints,
        warm=warm,
    )
    return results


def run_specs_supervised(
    instance: ProblemInstance,
    specs: list[RunSpec],
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
    observe_members: bool | None = None,
    fault_plan: FaultPlan | None = None,
    supervision: SupervisionPolicy | None = None,
    checkpoints: bool | None = None,
    warm: Any = None,
) -> tuple[list[RunResult], dict[str, Any] | None]:
    """Supervised :func:`run_specs`: results plus a fault report.

    ``fault_plan`` defaults to the process-ambient plan (see
    :func:`repro.faults.activate_plan`); ``supervision`` defaults to
    :class:`SupervisionPolicy`'s defaults.  ``checkpoints=None`` enables
    incumbent streaming exactly when a fault plan is active — forced on
    with ``True`` when recovery from *real* crashes should also preserve
    incumbents (at the cost of a manager process per pool).

    The returned report is ``None`` when nothing faulted; otherwise the
    dict also attached by :func:`parallel_restarts` as ``stats["faults"]``.
    """
    workers = default_workers() if workers is None else max(1, workers)
    if observe_members is None:
        observe_members = current().enabled
    plan = fault_plan if fault_plan is not None else active_plan()
    if plan is not None and not plan:
        plan = None
    policy = supervision if supervision is not None else SupervisionPolicy()
    want_checkpoints = (plan is not None) if checkpoints is None else checkpoints
    ledger = _FaultLedger()
    checkpoint_store: dict[int, _Checkpoint] = {}

    if workers == 1 or len(specs) <= 1:
        evaluator = evaluator or QueryEvaluator(instance, use_kernels=use_kernels)
        results = _supervised_inline_run(
            instance, specs, evaluator, observe_members, plan, policy,
            want_checkpoints, ledger, checkpoint_store,
        )
    else:
        results = _supervised_pool_run(
            instance, specs, workers, use_kernels, observe_members, plan, policy,
            want_checkpoints, ledger, checkpoint_store, warm=warm,
        )

    ordered: list[RunResult] = []
    for spec in specs:
        result = results.get(spec.index)
        if result is None:
            checkpoint = checkpoint_store.get(spec.index)
            if checkpoint is not None:
                result = _result_from_checkpoint(spec, checkpoint)
                ledger.recovered_members.append(spec.index)
            else:
                result = _lost_member_result(spec)
                ledger.lost_members.append(spec.index)
        ordered.append(result)
    report = ledger.report() if ledger.any() else None
    return ordered, report


def parallel_restarts(
    instance: ProblemInstance,
    budget: Budget,
    seed: int = 0,
    heuristic: str = "sea",
    restarts: int = 4,
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
    fault_plan: FaultPlan | None = None,
    supervision: SupervisionPolicy | None = None,
    checkpoints: bool | None = None,
    warm_start: Sequence[int] | None = None,
    warm: Any = None,
) -> RunResult:
    """Best-of-``restarts`` independent runs of one heuristic.

    ``warm_start`` hands every member the same starting incumbent (each
    still explores from its own derived seed after that); ``warm`` is a
    :class:`~repro.warm.plane.WarmInstanceSpec` switching pool workers to
    shared-memory attach instead of instance pickling.

    Every member receives a fresh budget with the *same* limits (members run
    concurrently, so the wall-clock cost is one member's budget, not their
    sum) and the seed ``derive_seed(seed, index)``.  The returned result is
    the member with the fewest violations — ties broken by member index —
    with the members' traces merged into one monotone staircase and their
    summaries kept under ``stats["members"]``.

    Member execution is supervised (crash/hang/corrupt recovery, incumbent
    checkpointing — see the module docstring); any recovery activity is
    reported under ``stats["faults"]``.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    warm_values = (
        tuple(int(value) for value in warm_start) if warm_start is not None else None
    )
    specs = [
        RunSpec(
            heuristic=heuristic,
            seed=derive_seed(seed, index),
            time_limit=budget.time_limit,
            max_iterations=budget.max_iterations,
            index=index,
            warm_start=warm_values,
        )
        for index in range(restarts)
    ]
    obs = current()
    watch = Stopwatch()
    with obs.span("parallel.run"):
        results, fault_report = run_specs_supervised(
            instance,
            specs,
            workers,
            evaluator,
            use_kernels,
            fault_plan=fault_plan,
            supervision=supervision,
            checkpoints=checkpoints,
            warm=warm,
        )
    elapsed = watch.elapsed()

    stats: dict[str, object] = {"restarts": restarts}
    if fault_report is not None:
        stats["faults"] = fault_report
        if obs.enabled:
            obs.counter("faults.crashes").inc(fault_report["crashes"])
            obs.counter("faults.hangs").inc(fault_report["hangs"])
            obs.counter("faults.corruptions").inc(fault_report["corruptions"])
            obs.counter("faults.retries").inc(fault_report["retries"])
            obs.counter("faults.rebuilds").inc(fault_report["rebuilds"])
            obs.counter("faults.recovered_members").inc(
                len(fault_report["recovered_members"])
            )
            obs.counter("faults.lost_members").inc(
                len(fault_report["lost_members"])
            )
    if obs.enabled:
        payloads = collect_exports([result.stats for result in results])
        merged_members = merge_states(payloads)
        replay_into(obs, merged_members)
        obs.counter("parallel.members").inc(len(results))
        stats["obs"] = {
            "members": merged_members["members"],
            "metrics": merged_members["metrics"],
            "events": len(merged_members["events"]),
        }

    best = min(enumerate(results), key=lambda pair: (pair[1].best_violations, pair[0]))
    winner_index, winner = best
    merged = _merge_concurrent_traces(results)
    stats["members"] = [member_stats(result) for result in results]
    stats["winner"] = winner_index
    return RunResult(
        algorithm=f"parallel({heuristic}×{restarts})",
        best_assignment=winner.best_assignment,
        best_violations=winner.best_violations,
        best_similarity=winner.best_similarity,
        elapsed=elapsed,
        iterations=sum(result.iterations for result in results),
        milestones=sum(result.milestones for result in results),
        trace=merged,
        stats=stats,
    )


def member_stats(result: RunResult) -> dict[str, object]:
    """Structured per-member digest kept under ``stats["members"]``.

    Includes the member's R*-tree work (``stats["index"]``, a
    :meth:`TreeStats.snapshot`-shaped delta) so parallel summaries account
    for index accesses, not just wall time.
    """
    return {
        "algorithm": result.algorithm,
        "violations": result.best_violations,
        "similarity": result.best_similarity,
        "iterations": result.iterations,
        "elapsed": result.elapsed,
        "index": result.stats.get("index"),
    }


def _merge_concurrent_traces(results: list[RunResult]) -> ConvergenceTrace:
    """Merge concurrent member traces into one improving staircase.

    Members run on a common wall clock, so points are interleaved by
    ``elapsed`` and only kept while they improve on everything seen earlier.
    """
    merged = ConvergenceTrace()
    points = sorted(
        (point for result in results for point in result.trace.points),
        key=lambda point: (point.elapsed, point.violations),
    )
    best = None
    for point in points:
        if best is None or point.violations < best:
            best = point.violations
            merged.record(
                point.elapsed, point.iterations, point.violations, point.similarity
            )
    return merged
