"""Process-parallel execution of independent search runs.

The paper's heuristics are embarrassingly parallel across *restarts*: two
ILS/GILS/SEA runs with different seeds share nothing but the (read-only)
problem instance.  This module exploits that with a
:class:`~concurrent.futures.ProcessPoolExecutor`: the instance is shipped to
each worker once (pool initializer, not per task), every restart runs the
full vectorized kernel stack on its own core, and the reduction keeps the
best solution found by any member.

Determinism
-----------
Each member's seed is *derived* — a BLAKE2b hash of ``(base seed, member
index)`` — so a member's trajectory depends only on its index, never on
which worker ran it or in which order results arrived.  Ties between members
are broken by member index.  Consequently, for iteration-limited budgets,
``parallel_restarts(seed=k, workers=n)`` returns the same best assignment
for every ``n`` (including the inline ``workers=1`` path); wall-clock
budgets remain timing-dependent, exactly as in sequential runs.

Everything crossing the process boundary is a plain picklable payload:
:class:`RunSpec` carries the heuristic *name* (looked up in
:data:`repro.core.two_step.HEURISTICS` inside the worker) and raw budget
limits, never callables or live ``Budget`` objects.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..query import ProblemInstance
from .budget import Budget, Stopwatch
from .evaluator import QueryEvaluator
from .result import ConvergenceTrace, RunResult

__all__ = ["RunSpec", "derive_seed", "default_workers", "parallel_restarts", "run_specs"]


def derive_seed(base_seed: int, index: int) -> int:
    """A stable 64-bit seed for member ``index`` of a run seeded ``base_seed``.

    Hash-derived (BLAKE2b) rather than ``base_seed + index`` so that member
    streams are decorrelated and independent of Python's salted ``hash``.
    """
    digest = hashlib.blake2b(
        f"{base_seed}:{index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def default_workers() -> int:
    """Worker count used when ``workers=None``: one per available core."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of work: a heuristic, a seed and budget limits."""

    heuristic: str
    seed: int
    time_limit: float | None
    max_iterations: int | None
    index: int

    def budget(self) -> Budget:
        return Budget(time_limit=self.time_limit, max_iterations=self.max_iterations)


# Per-process state: the instance and its evaluator are materialised once per
# worker (pool initializer) instead of once per task, so shipping a large
# instance costs one pickle per core, not one per restart.
_WORKER_INSTANCE: ProblemInstance | None = None
_WORKER_EVALUATOR: QueryEvaluator | None = None


def _init_worker(instance: ProblemInstance, use_kernels: bool) -> None:
    global _WORKER_INSTANCE, _WORKER_EVALUATOR
    _WORKER_INSTANCE = instance
    _WORKER_EVALUATOR = QueryEvaluator(instance, use_kernels=use_kernels)


def _run_spec_in_worker(spec: RunSpec) -> RunResult:
    assert _WORKER_INSTANCE is not None and _WORKER_EVALUATOR is not None
    return _execute_spec(spec, _WORKER_INSTANCE, _WORKER_EVALUATOR)


def _execute_spec(
    spec: RunSpec, instance: ProblemInstance, evaluator: QueryEvaluator
) -> RunResult:
    from .two_step import HEURISTICS  # local import: avoids a module cycle

    try:
        runner = HEURISTICS[spec.heuristic]
    except KeyError:
        known = ", ".join(sorted(HEURISTICS))
        raise ValueError(
            f"unknown heuristic {spec.heuristic!r}; known: {known}"
        ) from None
    return runner(instance, spec.budget(), spec.seed, evaluator)


def run_specs(
    instance: ProblemInstance,
    specs: list[RunSpec],
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
) -> list[RunResult]:
    """Execute ``specs`` and return their results in spec order.

    ``workers=1`` (or a single spec) runs inline in this process — no pool,
    no pickling — which is also the reference behaviour the determinism
    tests compare multi-worker runs against.
    """
    workers = default_workers() if workers is None else max(1, workers)
    if workers == 1 or len(specs) <= 1:
        evaluator = evaluator or QueryEvaluator(instance, use_kernels=use_kernels)
        return [_execute_spec(spec, instance, evaluator) for spec in specs]
    with ProcessPoolExecutor(
        max_workers=min(workers, len(specs)),
        initializer=_init_worker,
        initargs=(instance, use_kernels),
    ) as pool:
        return list(pool.map(_run_spec_in_worker, specs))


def parallel_restarts(
    instance: ProblemInstance,
    budget: Budget,
    seed: int = 0,
    heuristic: str = "sea",
    restarts: int = 4,
    workers: int | None = None,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
) -> RunResult:
    """Best-of-``restarts`` independent runs of one heuristic.

    Every member receives a fresh budget with the *same* limits (members run
    concurrently, so the wall-clock cost is one member's budget, not their
    sum) and the seed ``derive_seed(seed, index)``.  The returned result is
    the member with the fewest violations — ties broken by member index —
    with the members' traces merged into one monotone staircase and their
    summaries kept under ``stats["members"]``.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    specs = [
        RunSpec(
            heuristic=heuristic,
            seed=derive_seed(seed, index),
            time_limit=budget.time_limit,
            max_iterations=budget.max_iterations,
            index=index,
        )
        for index in range(restarts)
    ]
    watch = Stopwatch()
    results = run_specs(instance, specs, workers, evaluator, use_kernels)
    elapsed = watch.elapsed()

    best = min(enumerate(results), key=lambda pair: (pair[1].best_violations, pair[0]))
    winner_index, winner = best
    merged = _merge_concurrent_traces(results)
    return RunResult(
        algorithm=f"parallel({heuristic}×{restarts})",
        best_assignment=winner.best_assignment,
        best_violations=winner.best_violations,
        best_similarity=winner.best_similarity,
        elapsed=elapsed,
        iterations=sum(result.iterations for result in results),
        milestones=sum(result.milestones for result in results),
        trace=merged,
        stats={
            "members": [member_stats(result) for result in results],
            "winner": winner_index,
            "restarts": restarts,
        },
    )


def member_stats(result: RunResult) -> dict[str, object]:
    """Structured per-member digest kept under ``stats["members"]``."""
    return {
        "algorithm": result.algorithm,
        "violations": result.best_violations,
        "similarity": result.best_similarity,
        "iterations": result.iterations,
        "elapsed": result.elapsed,
    }


def _merge_concurrent_traces(results: list[RunResult]) -> ConvergenceTrace:
    """Merge concurrent member traces into one improving staircase.

    Members run on a common wall clock, so points are interleaved by
    ``elapsed`` and only kept while they improve on everything seen earlier.
    """
    merged = ConvergenceTrace()
    points = sorted(
        (point for result in results for point in result.trace.points),
        key=lambda point: (point.elapsed, point.violations),
    )
    best = None
    for point in points:
        if best is None or point.violations < best:
            best = point.violations
            merged.record(
                point.elapsed, point.iterations, point.violations, point.similarity
            )
    return merged
