"""Indexed Simulated Annealing (ISA) — the third [PMK+99] heuristic family.

The paper's §2 discusses the heuristics of [PMK+99] — local search,
*simulated annealing* and genetic algorithms — and §3-5 upgrade two of them
(local and evolutionary search) with index awareness.  This module completes
the family for comparison purposes: classic simulated annealing over the
solution graph, with the same index-aware move generator made available as
an option.

Moves re-instantiate one uniformly chosen variable.  The proposal is either

* **random** — a uniform object from the variable's domain (the [PMK+99]
  baseline), or
* **indexed** (probability ``guided_move_rate``) — an object drawn from a
  window query around one of the variable's current constraint windows, so
  the proposal satisfies at least that join condition.

Acceptance follows Metropolis: downhill (fewer violations) always, uphill
with probability ``exp(-Δ/T)``.  The temperature cools linearly with budget
*progress* (time- or iteration-based), so one parameter set works for any
budget length — start at ``initial_temperature`` (in units of violations),
end near zero.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..faults import checkpoint_incumbent
from ..index.queries import search_predicate
from ..index.stats import index_work_since, node_reads_probe, snapshot_trees
from ..obs import current
from ..query import ProblemInstance
from .budget import Budget
from .evaluator import QueryEvaluator
from .result import RunResult

__all__ = ["SAConfig", "indexed_simulated_annealing"]


@dataclass
class SAConfig:
    """Annealing knobs.

    ``initial_temperature`` is in violation units: at T=2 an uphill move
    adding one violation is accepted with probability ``exp(-0.5) ≈ 0.61``.
    ``guided_move_rate = 0`` gives the classic [PMK+99]-style annealer.
    """

    initial_temperature: float = 2.0
    final_temperature: float = 0.01
    guided_move_rate: float = 0.5
    stop_on_exact: bool = True

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError(
                f"initial_temperature must be positive, "
                f"got {self.initial_temperature}"
            )
        if not 0 < self.final_temperature <= self.initial_temperature:
            raise ValueError(
                "final_temperature must be in (0, initial_temperature], "
                f"got {self.final_temperature}"
            )
        if not 0.0 <= self.guided_move_rate <= 1.0:
            raise ValueError(
                f"guided_move_rate must be in [0, 1], got {self.guided_move_rate}"
            )

    def temperature(self, progress: float) -> float:
        """Geometric interpolation from initial to final temperature."""
        ratio = self.final_temperature / self.initial_temperature
        return self.initial_temperature * ratio ** min(1.0, max(0.0, progress))


def indexed_simulated_annealing(
    instance: ProblemInstance,
    budget: Budget,
    seed: int | random.Random = 0,
    config: SAConfig | None = None,
    evaluator: QueryEvaluator | None = None,
    warm_start: Sequence[int] | None = None,
) -> RunResult:
    """Run simulated annealing within ``budget``; one iteration = one move
    proposal (accepted or not).

    ``warm_start`` replaces the random initial state; the walk may still
    move downhill, but the incumbent starts at the warm assignment, so the
    reported answer is never worse than it.
    """
    config = config or SAConfig()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    evaluator = evaluator or QueryEvaluator(instance)
    warm_values = evaluator.validated_warm_start(warm_start)
    obs = current()
    baseline = snapshot_trees(evaluator.trees)
    probe = node_reads_probe(evaluator.trees)
    budget.start()

    trace = obs.convergence_trace()
    if warm_values is not None:
        state = evaluator.make_state(warm_values)
    else:
        state = evaluator.random_state(rng)
    best_values = state.as_tuple()
    best_violations = state.violations
    trace.record(budget.elapsed(), 0, best_violations, state.similarity)
    checkpoint_incumbent(
        best_values, best_violations, state.similarity, budget.elapsed(), 0
    )
    iterations = 0
    accepted = 0
    num_variables = evaluator.num_variables

    with obs.span("isa.run", io=probe):
        while not budget.exhausted():
            if config.stop_on_exact and best_violations == 0:
                break
            variable = rng.randrange(num_variables)
            candidate = _propose(state, evaluator, variable, config, rng)
            iterations += 1
            budget.tick()
            if candidate is None or candidate == state.values[variable]:
                continue
            before = state.violations
            old_value = state.values[variable]
            state.set_value(variable, candidate)
            delta = state.violations - before
            if delta > 0:
                temperature = config.temperature(budget.progress())
                if rng.random() >= math.exp(-delta / temperature):
                    state.set_value(variable, old_value)  # reject
                    continue
            accepted += 1
            if state.violations < best_violations:
                best_violations = state.violations
                best_values = state.as_tuple()
                trace.record(
                    budget.elapsed(), iterations, best_violations, state.similarity
                )
                checkpoint_incumbent(
                    best_values, best_violations, state.similarity,
                    budget.elapsed(), iterations,
                )

    obs.counter("isa.proposals").inc(iterations)
    obs.counter("isa.accepted_moves").inc(accepted)
    index_work = index_work_since(evaluator.trees, baseline)
    obs.absorb_index_work(index_work)
    return RunResult(
        algorithm="ISA" if config.guided_move_rate > 0 else "SA",
        best_assignment=best_values,
        best_violations=best_violations,
        best_similarity=evaluator.similarity(best_violations),
        elapsed=budget.elapsed(),
        iterations=iterations,
        milestones=accepted,
        trace=trace,
        stats={
            "accepted_moves": accepted,
            "guided_move_rate": config.guided_move_rate,
            "index": index_work,
        },
    )


def _propose(
    state, evaluator: QueryEvaluator, variable: int, config: SAConfig, rng
) -> int | None:
    """A candidate value for ``variable``: indexed or uniform."""
    if config.guided_move_rate and rng.random() < config.guided_move_rate:
        constraints = state.constraint_windows(variable)
        violated = [
            (predicate, window)
            for (predicate, window), (j, _p) in zip(
                constraints, evaluator.neighbors[variable]
            )
            if not predicate.test(
                evaluator.rects[variable][state.values[variable]], window
            )
        ]
        pool = violated or constraints
        if pool:
            predicate, window = pool[rng.randrange(len(pool))]
            matches = [
                item
                for _rect, item in search_predicate(
                    evaluator.trees[variable], predicate, window
                )
            ]
            if matches:
                return matches[rng.randrange(len(matches))]
            return None
    return rng.randrange(len(evaluator.rects[variable]))
