"""The paper's contribution: approximate multiway spatial join processing.

Heuristic (anytime) algorithms — ILS, GILS, SEA — plus the systematic IBB
and the two-step combinations, all operating on R*-tree-indexed datasets.
"""

from .annealing import SAConfig, indexed_simulated_annealing
from .best_value import BestValue, brute_force_best_value, find_best_value
from .budget import Budget, Stopwatch
from .evaluator import QueryEvaluator
from .gils import DEFAULT_LAMBDA_FACTOR, GILSConfig, guided_indexed_local_search
from .ibb import IBBConfig, connectivity_order, indexed_branch_and_bound
from .ils import ILSConfig, indexed_local_search
from .parallel import RunSpec, default_workers, derive_seed, parallel_restarts, run_specs
from .penalties import PenaltyTable
from .portfolio import DEFAULT_PORTFOLIO, portfolio_search
from .result import ConvergenceTrace, RunResult, TracePoint
from .sea import SEAConfig, greedy_keep_set, spatial_evolutionary_algorithm
from .sea_params import SEAParameters
from .solution import SolutionState
from .two_step import HEURISTICS, TwoStepResult, two_step

__all__ = [
    "Budget",
    "Stopwatch",
    "QueryEvaluator",
    "SolutionState",
    "BestValue",
    "find_best_value",
    "brute_force_best_value",
    "ILSConfig",
    "indexed_local_search",
    "GILSConfig",
    "guided_indexed_local_search",
    "DEFAULT_LAMBDA_FACTOR",
    "PenaltyTable",
    "SEAConfig",
    "SEAParameters",
    "spatial_evolutionary_algorithm",
    "greedy_keep_set",
    "IBBConfig",
    "indexed_branch_and_bound",
    "connectivity_order",
    "TwoStepResult",
    "two_step",
    "HEURISTICS",
    "portfolio_search",
    "DEFAULT_PORTFOLIO",
    "parallel_restarts",
    "run_specs",
    "RunSpec",
    "derive_seed",
    "default_workers",
    "SAConfig",
    "indexed_simulated_annealing",
    "RunResult",
    "ConvergenceTrace",
    "TracePoint",
]
