"""Penalty memory for Guided Indexed Local Search (§4).

GILS records, for each assignment ``v_i ← r`` seen at a local maximum, an
integer penalty.  Penalties enter similarity comparisons through the
*effective inconsistency degree*::

    effective(S) = violations(S) + λ · Σ_i penalty(v_i ← r_i)

The paper stores penalties in an ``n × N`` array for small problems and a
hash table for large ones, noting the array is very sparse.  A dict keyed by
``(variable, object_id)`` is exactly that hash table and is the only variant
needed in Python (missing keys read as 0).
"""

from __future__ import annotations

__all__ = ["PenaltyTable"]


class PenaltyTable:
    """Sparse ``(variable, object_id) → penalty`` map with λ weighting."""

    def __init__(self, lam: float):
        if lam < 0:
            raise ValueError(f"penalty weight λ must be non-negative, got {lam}")
        self.lam = lam
        self._penalties: dict[tuple[int, int], int] = {}
        #: total number of +1 punishments issued (reported in run stats)
        self.total_issued = 0

    def get(self, variable: int, object_id: int) -> int:
        """Raw integer penalty of one assignment (0 when never punished)."""
        return self._penalties.get((variable, object_id), 0)

    def weighted(self, variable: int, object_id: int) -> float:
        """``λ · penalty`` — the term entering effective scores."""
        penalty = self._penalties.get((variable, object_id), 0)
        return self.lam * penalty if penalty else 0.0

    def weighted_total(self, values: list[int] | tuple[int, ...]) -> float:
        """``λ · Σ penalty(v_i ← values[i])`` over a whole solution."""
        total = 0
        for variable, object_id in enumerate(values):
            total += self._penalties.get((variable, object_id), 0)
        return self.lam * total

    def punish_minimum(self, values: list[int] | tuple[int, ...]) -> list[int]:
        """Apply the paper's punishment rule at a local maximum.

        Among the solution's assignments, those currently holding the
        *minimum* penalty each get +1 ("in order to avoid over-punishing"
        assignments already penalised at earlier maxima).  Returns the list
        of punished variables, mainly for tests and diagnostics.
        """
        current = [
            self._penalties.get((variable, object_id), 0)
            for variable, object_id in enumerate(values)
        ]
        minimum = min(current)
        punished = []
        for variable, object_id in enumerate(values):
            if current[variable] == minimum:
                self._penalties[(variable, object_id)] = minimum + 1
                self.total_issued += 1
                punished.append(variable)
        return punished

    def __len__(self) -> int:
        """Number of distinct assignments ever punished."""
        return len(self._penalties)
