"""Columnar NumPy geometry kernels.

Every heuristic in the paper bottoms out in two scalar hot loops — violation
counting and the per-entry scoring of ``find_best_value`` — executed millions
of times per run.  This module provides the data-parallel substrate that
replaces those loops: rectangle collections are stored as four contiguous
``float64`` arrays (``xmin``/``ymin``/``xmax``/``ymax``, the classic columnar
layout of in-memory spatial join systems) and every spatial predicate gains a
*batched* form that tests one window against a whole column set with a
handful of NumPy comparisons.

Three kernel families are exposed, mirroring the scalar API:

* :func:`test_pairs` — the batched :meth:`SpatialPredicate.test`: one boolean
  per row (broadcasting, so the second operand may be a single window or a
  ``(n, 1)``-shaped column set for a full cross matrix);
* :func:`filter_pairs` — the batched admissible subtree filter
  :meth:`SpatialPredicate.node_may_satisfy`;
* :func:`count_satisfied` / :func:`count_may_satisfy` — per-row counts over a
  list of ``(predicate, window)`` constraints, the quantity both
  ``find_best_value`` and the evaluator maximise.

Unknown predicate types (user subclasses of :class:`SpatialPredicate`) fall
back to the scalar path row by row, so correctness never depends on a type
being listed here.  All kernels use *exactly* the same closed-interval float
comparisons as :mod:`repro.geometry.rect`, so scalar and vectorized paths
agree bit-for-bit — the property suite in ``tests/test_kernels.py`` enforces
this, including touching-edge and degenerate (zero-area) rectangles.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import numpy as np

from .predicates import (
    Contains,
    Inside,
    Intersects,
    Northeast,
    Southwest,
    SpatialPredicate,
    WithinDistance,
)
from ..obs import current
from .rect import Rect

__all__ = [
    "Columns",
    "RectColumns",
    "pack_bounds",
    "split_columns",
    "window_columns",
    "test_pairs",
    "filter_pairs",
    "pair_matrix",
    "count_satisfied",
    "count_may_satisfy",
    "make_count_scorer",
]

#: Four broadcast-compatible coordinate arrays ``(xmin, ymin, xmax, ymax)``.
#: Scalars are legal members (a single window is just a degenerate column).
Columns = tuple[Any, Any, Any, Any]


def pack_bounds(rects: Sequence[Rect | tuple]) -> np.ndarray:
    """Pack rectangles into a C-contiguous ``(n, 4)`` float64 array.

    Row layout matches :class:`Rect`: ``xmin, ymin, xmax, ymax``.
    """
    if len(rects) == 0:
        return np.empty((0, 4), dtype=np.float64)
    return np.asarray(rects, dtype=np.float64).reshape(len(rects), 4)


def split_columns(bounds: np.ndarray) -> Columns:
    """Column views of a packed ``(n, 4)`` bounds array."""
    return bounds[:, 0], bounds[:, 1], bounds[:, 2], bounds[:, 3]


def window_columns(window: Rect) -> Columns:
    """A single window as scalar 'columns' (broadcasts against any row set)."""
    return (window.xmin, window.ymin, window.xmax, window.ymax)


class RectColumns:
    """A rectangle collection in columnar layout.

    Stores the dataset's MBRs as four *contiguous* float64 arrays — the
    layout every kernel in this module consumes without copying.  Built once
    per :class:`~repro.data.datasets.SpatialDataset` and cached there.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(
        self, xmin: np.ndarray, ymin: np.ndarray, xmax: np.ndarray, ymax: np.ndarray
    ) -> None:
        columns = [np.ascontiguousarray(c, dtype=np.float64) for c in (xmin, ymin, xmax, ymax)]
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"column length mismatch: {sorted(lengths)}")
        self.xmin, self.ymin, self.xmax, self.ymax = columns

    @classmethod
    def from_rects(cls, rects: Iterable[Rect]) -> "RectColumns":
        packed = pack_bounds(list(rects))
        return cls(*split_columns(packed))

    def __len__(self) -> int:
        return len(self.xmin)

    def rect(self, index: int) -> Rect:
        """Materialise one row back into a scalar :class:`Rect`."""
        return Rect(
            float(self.xmin[index]),
            float(self.ymin[index]),
            float(self.xmax[index]),
            float(self.ymax[index]),
        )

    def as_tuple(self) -> Columns:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    def take(self, indices: Any) -> Columns:
        """Gather rows by index (fancy indexing; ``indices`` may be an array)."""
        return (
            self.xmin[indices],
            self.ymin[indices],
            self.xmax[indices],
            self.ymax[indices],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RectColumns(n={len(self)})"


# ----------------------------------------------------------------------
# predicate kernels
# ----------------------------------------------------------------------
def _intersects(a: Columns, b: Columns) -> np.ndarray:
    axmin, aymin, axmax, aymax = a
    bxmin, bymin, bxmax, bymax = b
    return (axmin <= bxmax) & (bxmin <= axmax) & (aymin <= bymax) & (bymin <= aymax)


def _inside(a: Columns, b: Columns) -> np.ndarray:
    axmin, aymin, axmax, aymax = a
    bxmin, bymin, bxmax, bymax = b
    return (bxmin <= axmin) & (bymin <= aymin) & (axmax <= bxmax) & (aymax <= bymax)


def _contains(a: Columns, b: Columns) -> np.ndarray:
    return _inside(b, a)


def _northeast(a: Columns, b: Columns) -> np.ndarray:
    axmin, aymin, _axmax, _aymax = a
    _bxmin, _bymin, bxmax, bymax = b
    return (axmin >= bxmax) & (aymin >= bymax)


def _southwest(a: Columns, b: Columns) -> np.ndarray:
    _axmin, _aymin, axmax, aymax = a
    bxmin, bymin, _bxmax, _bymax = b
    return (axmax <= bxmin) & (aymax <= bymin)


def _within_distance(a: Columns, b: Columns, distance: float) -> np.ndarray:
    axmin, aymin, axmax, aymax = a
    bxmin, bymin, bxmax, bymax = b
    dx = np.maximum(np.maximum(bxmin - axmax, axmin - bxmax), 0.0)
    dy = np.maximum(np.maximum(bymin - aymax, aymin - bymax), 0.0)
    return np.hypot(dx, dy) <= distance


def test_pairs(
    predicate: SpatialPredicate, a: Columns, b: Columns
) -> np.ndarray | None:
    """Batched :meth:`SpatialPredicate.test` — ``predicate.test(a_row, b_row)``.

    Operands broadcast like NumPy arrays, so ``b`` may be a single window
    (scalars), an equal-length row set (elementwise) or a reshaped column set
    (cross product).  Returns ``None`` for predicate types without a kernel;
    callers then fall back to the scalar path.
    """
    kind = type(predicate)
    if kind is Intersects:
        return _intersects(a, b)
    if kind is Inside:
        return _inside(a, b)
    if kind is Contains:
        return _contains(a, b)
    if kind is Northeast:
        return _northeast(a, b)
    if kind is Southwest:
        return _southwest(a, b)
    if kind is WithinDistance:
        return _within_distance(a, b, predicate.distance)
    return None


def filter_pairs(
    predicate: SpatialPredicate, a: Columns, b: Columns
) -> np.ndarray | None:
    """Batched :meth:`SpatialPredicate.node_may_satisfy` over node MBR rows.

    ``a`` holds node MBRs, ``b`` the window(s).  Must never be ``False`` for
    a node containing a qualifying rectangle (the same admissibility contract
    as the scalar method).  Returns ``None`` for unknown predicate types.
    """
    kind = type(predicate)
    if kind is Intersects or kind is Inside:
        return _intersects(a, b)
    if kind is Contains:
        return _contains(a, b)
    if kind is Northeast:
        _axmin, _aymin, axmax, aymax = a
        _bxmin, _bymin, bxmax, bymax = b
        return (axmax >= bxmax) & (aymax >= bymax)
    if kind is Southwest:
        axmin, aymin, _axmax, _aymax = a
        bxmin, bymin, _bxmax, _bymax = b
        return (axmin <= bxmin) & (aymin <= bymin)
    if kind is WithinDistance:
        return _within_distance(a, b, predicate.distance)
    return None


def pair_matrix(
    predicate: SpatialPredicate, a: RectColumns | Columns, b: RectColumns | Columns
) -> np.ndarray:
    """Full ``(len(a), len(b))`` boolean predicate matrix (broadcast join).

    Row ``i``, column ``j`` answers ``predicate.test(a[i], b[j])``.
    """
    a = a.as_tuple() if isinstance(a, RectColumns) else a
    b = b.as_tuple() if isinstance(b, RectColumns) else b
    a_rows = tuple(np.asarray(c).reshape(-1, 1) for c in a)
    mask = test_pairs(predicate, a_rows, b)
    if mask is not None:
        return mask
    # scalar fallback for exotic predicate types: row-by-row
    obs = current()
    if obs.enabled:
        obs.counter("kernels.scalar_pair_matrices").inc()
    rect_a = [Rect(*map(float, row)) for row in zip(*a)]
    rect_b = [Rect(*map(float, row)) for row in zip(*b)]
    out = np.empty((len(rect_a), len(rect_b)), dtype=bool)
    for i, ra in enumerate(rect_a):
        out[i] = [predicate.test(ra, rb) for rb in rect_b]
    return out


# ----------------------------------------------------------------------
# constraint counting
# ----------------------------------------------------------------------
def _scalar_count(
    rows: Columns,
    constraints: Sequence[tuple[SpatialPredicate, Rect]],
    counts: np.ndarray,
    method: str,
) -> None:
    """Row-by-row fallback for predicates without a vector kernel."""
    rects = [Rect(*map(float, row)) for row in zip(*rows)]
    obs = current()
    if obs.enabled:
        obs.counter("kernels.scalar_fallback_rows").inc(len(rects))
    for predicate, window in constraints:
        check = getattr(predicate, method)
        for position, rect in enumerate(rects):
            if check(rect, window):
                counts[position] += 1


def _intersects_counts(
    rows: Columns, constraints: Sequence[tuple[SpatialPredicate, Rect]]
) -> np.ndarray:
    """All-``intersects`` fast path: one broadcast over all windows at once.

    The dominant case in the paper (every experiment uses ``overlap``
    queries); a single ``(n, m)`` broadcast beats ``m`` separate
    per-constraint kernel calls because the NumPy dispatch overhead is paid
    once instead of per window.
    """
    windows = pack_bounds([window for _predicate, window in constraints])
    xmin, ymin, xmax, ymax = (np.asarray(c).reshape(-1, 1) for c in rows)
    mask = (
        (xmin <= windows[:, 2])
        & (windows[:, 0] <= xmax)
        & (ymin <= windows[:, 3])
        & (windows[:, 1] <= ymax)
    )
    return mask.sum(axis=1, dtype=np.intp)


def _count(
    rows: RectColumns | Columns | np.ndarray,
    constraints: Sequence[tuple[SpatialPredicate, Rect]],
    method: str,
) -> np.ndarray:
    if isinstance(rows, np.ndarray):
        rows = split_columns(rows)
    elif isinstance(rows, RectColumns):
        rows = rows.as_tuple()
    if constraints and all(
        type(predicate) is Intersects for predicate, _window in constraints
    ):
        # test and node_may_satisfy coincide for intersects
        return _intersects_counts(rows, constraints)
    counts = np.zeros(len(rows[0]), dtype=np.intp)
    kernel = test_pairs if method == "test" else filter_pairs
    slow: list[tuple[SpatialPredicate, Rect]] = []
    for predicate, window in constraints:
        mask = kernel(predicate, rows, window_columns(window))
        if mask is None:
            slow.append((predicate, window))
        else:
            counts += mask
    if slow:
        scalar_method = "test" if method == "test" else "node_may_satisfy"
        _scalar_count(rows, slow, counts, scalar_method)
    return counts


def count_satisfied(
    rows: RectColumns | Columns | np.ndarray,
    constraints: Sequence[tuple[SpatialPredicate, Rect]],
) -> np.ndarray:
    """Per-row number of constraints whose ``test`` passes.

    ``rows`` may be a :class:`RectColumns`, a 4-tuple of column arrays or a
    packed ``(n, 4)`` bounds array (a node's cached array, typically).
    """
    return _count(rows, constraints, "test")


def count_may_satisfy(
    rows: RectColumns | Columns | np.ndarray,
    constraints: Sequence[tuple[SpatialPredicate, Rect]],
) -> np.ndarray:
    """Per-row number of constraints whose ``node_may_satisfy`` passes."""
    return _count(rows, constraints, "filter")


def make_count_scorer(
    constraints: Sequence[tuple[SpatialPredicate, Rect]],
    method: str = "test",
) -> Callable[[RectColumns | Columns | np.ndarray], np.ndarray]:
    """Pre-compiled counting kernel for a fixed constraint list.

    :func:`count_satisfied` re-packs the constraint windows on every call —
    negligible for one-shot scans, but measurable when the same constraints
    score thousands of tree nodes (``find_best_value``).  This returns a
    ``scorer(rows) -> counts`` closure with the windows packed once.  For
    the all-``intersects`` case (the paper's default) the scorer is a
    single broadcast; other predicate mixes defer to the generic kernels.
    ``method`` selects ``"test"`` (leaf semantics) or ``"filter"``
    (intermediate-node admissible semantics).
    """
    if constraints and all(
        type(predicate) is Intersects for predicate, _window in constraints
    ):
        windows = pack_bounds([window for _predicate, window in constraints])
        wxmin, wymin, wxmax, wymax = (windows[:, k] for k in range(4))

        def scorer(rows: RectColumns | Columns | np.ndarray) -> np.ndarray:
            if isinstance(rows, np.ndarray):
                xmin, ymin, xmax, ymax = (rows[:, k : k + 1] for k in range(4))
            else:
                if isinstance(rows, RectColumns):
                    rows = rows.as_tuple()
                xmin, ymin, xmax, ymax = (
                    np.asarray(c).reshape(-1, 1) for c in rows
                )
            return (
                (xmin <= wxmax)
                & (wxmin <= xmax)
                & (ymin <= wymax)
                & (wymin <= ymax)
            ).sum(axis=1, dtype=np.intp)

        return scorer
    counter = count_satisfied if method == "test" else count_may_satisfy
    return lambda rows: counter(rows, constraints)
