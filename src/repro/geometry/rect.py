"""Axis-aligned rectangles (minimum bounding rectangles).

The whole library works on MBRs, following the common filter step of spatial
query processing: datasets store one :class:`Rect` per object and all join
predicates are evaluated on these rectangles.  Coordinates are plain floats in
an arbitrary workspace; the synthetic generators in :mod:`repro.data` use the
unit square ``[0, 1]²`` as the paper does.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, NamedTuple

__all__ = ["Rect", "union_all", "EMPTY_BOUNDS"]

#: Bounds value representing "nothing": any union with it yields the operand.
EMPTY_BOUNDS = (math.inf, math.inf, -math.inf, -math.inf)


class Rect(NamedTuple):
    """A closed axis-aligned rectangle ``[xmin, xmax] × [ymin, ymax]``.

    ``Rect`` is a :class:`~typing.NamedTuple`, so it is immutable, hashable,
    cheaply unpackable and has value equality — properties the search
    algorithms rely on when caching assignments.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its center point and side lengths."""
        if width < 0 or height < 0:
            raise ValueError(f"negative extent: width={width}, height={height}")
        half_w = width / 2.0
        half_h = height / 2.0
        return cls(cx - half_w, cy - half_h, cx + half_w, cy + half_h)

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "Rect":
        """Smallest rectangle enclosing all ``points`` (at least one)."""
        xs, ys = zip(*points)
        return cls(min(xs), min(ys), max(xs), max(ys))

    def validate(self) -> "Rect":
        """Return ``self`` if well-formed, raise :class:`ValueError` otherwise."""
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"malformed rectangle: {self!r}")
        if not all(math.isfinite(c) for c in self):
            raise ValueError(f"non-finite coordinate in rectangle: {self!r}")
        return self

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    def area(self) -> float:
        """Area of the rectangle (0 for degenerate rectangles)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half perimeter, the R*-tree split criterion of [BKSS90]."""
        return self.width + self.height

    def center(self) -> tuple[float, float]:
        return ((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------
    def intersects(self, other: "Rect") -> bool:
        """True if the closed rectangles share at least one point.

        This is the paper's standard join condition (*overlap*,
        *non-disjoint*); rectangles touching only at an edge or corner count
        as intersecting.
        """
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def contains(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside ``self`` (closed semantics)."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.xmin <= x <= self.xmax and self.ymin <= y <= self.ymax

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping region, or ``None`` when disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Rect(xmin, ymin, xmax, ymax)

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap (0 when disjoint); avoids allocating a Rect."""
        dx = min(self.xmax, other.xmax) - max(self.xmin, other.xmin)
        if dx <= 0.0:
            return 0.0
        dy = min(self.ymax, other.ymax) - max(self.ymin, other.ymin)
        if dy <= 0.0:
            return 0.0
        return dx * dy

    def union(self, other: "Rect") -> "Rect":
        """Smallest rectangle enclosing both operands."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for ``self`` to also cover ``other``.

        This is the classic R-tree *choose subtree* criterion.
        """
        dx = max(self.xmax, other.xmax) - min(self.xmin, other.xmin)
        dy = max(self.ymax, other.ymax) - min(self.ymin, other.ymin)
        return dx * dy - self.area()

    def min_distance(self, other: "Rect") -> float:
        """Euclidean distance between the closest points of two rectangles."""
        dx = max(other.xmin - self.xmax, self.xmin - other.xmax, 0.0)
        dy = max(other.ymin - self.ymax, self.ymin - other.ymax, 0.0)
        return math.hypot(dx, dy)

    def buffered(self, distance: float) -> "Rect":
        """Rectangle expanded by ``distance`` on every side (Minkowski sum)."""
        if distance < 0:
            raise ValueError(f"negative buffer distance: {distance}")
        return Rect(
            self.xmin - distance,
            self.ymin - distance,
            self.xmax + distance,
            self.ymax + distance,
        )

    def clipped(self, workspace: "Rect") -> "Rect":
        """Rectangle clipped to ``workspace``; raises when fully outside."""
        clip = self.intersection(workspace)
        if clip is None:
            raise ValueError(f"{self!r} lies outside workspace {workspace!r}")
        return clip


def union_all(rects: Iterable[Rect]) -> Rect:
    """Smallest rectangle enclosing every rectangle in ``rects``.

    Raises :class:`ValueError` on an empty iterable, because there is no
    meaningful empty rectangle in the closed-interval model used here.
    """
    iterator: Iterator[Rect] = iter(rects)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("union_all() of an empty iterable") from None
    xmin, ymin, xmax, ymax = first
    for rect in iterator:
        if rect.xmin < xmin:
            xmin = rect.xmin
        if rect.ymin < ymin:
            ymin = rect.ymin
        if rect.xmax > xmax:
            xmax = rect.xmax
        if rect.ymax > ymax:
            ymax = rect.ymax
    return Rect(xmin, ymin, xmax, ymax)
