"""Spatial join predicates.

The paper's experiments use the standard *overlap* (intersect, non-disjoint)
join condition, but §7 notes the methods "are easily extensible to other
spatial predicates, such as northeast, inside, near".  This module provides
that extension point: a small algebra of binary predicates that the
evaluator, ``find_best_value`` and the systematic algorithms consume
uniformly.

Each predicate answers two questions:

* :meth:`SpatialPredicate.test` — does a candidate rectangle satisfy the
  predicate against a *window* (the current rectangle of the other join
  variable)?
* :meth:`SpatialPredicate.node_may_satisfy` — could *any* rectangle stored
  below an R-tree node (whose MBR is given) satisfy the predicate?  This is
  the admissible filter that lets the branch-and-bound searches prune whole
  subtrees, and it must never return ``False`` for a node that contains a
  qualifying rectangle.

Predicates can be asymmetric (``inside`` vs ``contains``); ``inverse()``
returns the predicate seen from the other endpoint of the query edge, i.e.
``p.test(a, b) == p.inverse().test(b, a)`` for all rectangles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .rect import Rect

__all__ = [
    "SpatialPredicate",
    "Intersects",
    "Inside",
    "Contains",
    "Northeast",
    "Southwest",
    "WithinDistance",
    "INTERSECTS",
    "INSIDE",
    "CONTAINS",
    "NORTHEAST",
    "SOUTHWEST",
    "predicate_from_name",
]


class SpatialPredicate(ABC):
    """A binary spatial relation between a candidate rectangle and a window."""

    #: short identifier used in reprs, query serialisation and the CLI
    name: str = "abstract"

    @abstractmethod
    def test(self, rect: Rect, window: Rect) -> bool:
        """True if ``rect`` stands in this relation to ``window``."""

    @abstractmethod
    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        """Admissible subtree filter: ``False`` only if *no* rectangle that
        fits inside ``node_mbr`` can satisfy :meth:`test` against ``window``.
        """

    def inverse(self) -> "SpatialPredicate":
        """The same relation read from the other endpoint of the edge."""
        return self

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class Intersects(SpatialPredicate):
    """The paper's default *overlap* condition: rectangles are non-disjoint."""

    name = "intersects"

    def test(self, rect: Rect, window: Rect) -> bool:
        return rect.intersects(window)

    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        # A child can only intersect the window if its parent MBR does.
        return node_mbr.intersects(window)


class Inside(SpatialPredicate):
    """Candidate lies entirely inside the window."""

    name = "inside"

    def test(self, rect: Rect, window: Rect) -> bool:
        return window.contains(rect)

    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        # Any qualifying child lies in window ∩ node_mbr, so that region
        # must be non-empty.
        return node_mbr.intersects(window)

    def inverse(self) -> "SpatialPredicate":
        return CONTAINS


class Contains(SpatialPredicate):
    """Candidate entirely covers the window."""

    name = "contains"

    def test(self, rect: Rect, window: Rect) -> bool:
        return rect.contains(window)

    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        # The child covers the window and the node MBR covers the child.
        return node_mbr.contains(window)

    def inverse(self) -> "SpatialPredicate":
        return INSIDE


class Northeast(SpatialPredicate):
    """Candidate lies strictly to the north-east of the window.

    Using the projection-based semantics of [ZSI01]: every point of the
    candidate is right of the window's right edge and above its top edge.
    """

    name = "northeast"

    def test(self, rect: Rect, window: Rect) -> bool:
        return rect.xmin >= window.xmax and rect.ymin >= window.ymax

    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        # A child with xmin >= window.xmax forces node.xmax >= window.xmax.
        return node_mbr.xmax >= window.xmax and node_mbr.ymax >= window.ymax

    def inverse(self) -> "SpatialPredicate":
        return SOUTHWEST


class Southwest(SpatialPredicate):
    """Candidate lies strictly to the south-west of the window."""

    name = "southwest"

    def test(self, rect: Rect, window: Rect) -> bool:
        return rect.xmax <= window.xmin and rect.ymax <= window.ymin

    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        return node_mbr.xmin <= window.xmin and node_mbr.ymin <= window.ymin

    def inverse(self) -> "SpatialPredicate":
        return NORTHEAST


class WithinDistance(SpatialPredicate):
    """The *near* predicate: rectangles closer than ``distance`` apart."""

    name = "within_distance"

    def __init__(self, distance: float) -> None:
        if distance < 0:
            raise ValueError(f"negative distance: {distance}")
        self.distance = float(distance)

    def test(self, rect: Rect, window: Rect) -> bool:
        return rect.min_distance(window) <= self.distance

    def node_may_satisfy(self, node_mbr: Rect, window: Rect) -> bool:
        return node_mbr.min_distance(window) <= self.distance

    def __repr__(self) -> str:
        return f"WithinDistance({self.distance!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WithinDistance) and other.distance == self.distance

    def __hash__(self) -> int:
        return hash((WithinDistance, self.distance))


#: Shared stateless instances; ``WithinDistance`` is parameterised and has none.
INTERSECTS = Intersects()
INSIDE = Inside()
CONTAINS = Contains()
NORTHEAST = Northeast()
SOUTHWEST = Southwest()

_BY_NAME: dict[str, SpatialPredicate] = {
    p.name: p for p in (INTERSECTS, INSIDE, CONTAINS, NORTHEAST, SOUTHWEST)
}


def predicate_from_name(name: str, distance: float | None = None) -> SpatialPredicate:
    """Look up a predicate by its :attr:`~SpatialPredicate.name`.

    ``within_distance`` additionally requires the ``distance`` parameter.
    """
    if name == WithinDistance.name:
        if distance is None:
            raise ValueError("within_distance requires a distance parameter")
        return WithinDistance(distance)
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME) + [WithinDistance.name])
        raise ValueError(f"unknown predicate {name!r}; known: {known}") from None
