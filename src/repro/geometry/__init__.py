"""Geometric primitives: rectangles (MBRs) and spatial join predicates."""

from .rect import EMPTY_BOUNDS, Rect, union_all
from .predicates import (
    CONTAINS,
    INSIDE,
    INTERSECTS,
    NORTHEAST,
    SOUTHWEST,
    Contains,
    Inside,
    Intersects,
    Northeast,
    Southwest,
    SpatialPredicate,
    WithinDistance,
    predicate_from_name,
)

__all__ = [
    "Rect",
    "union_all",
    "EMPTY_BOUNDS",
    "SpatialPredicate",
    "Intersects",
    "Inside",
    "Contains",
    "Northeast",
    "Southwest",
    "WithinDistance",
    "INTERSECTS",
    "INSIDE",
    "CONTAINS",
    "NORTHEAST",
    "SOUTHWEST",
    "predicate_from_name",
]
