"""Pairwise R-tree join [BKS93] — the building block of PJM.

Synchronised depth-first traversal of two R-trees reporting all pairs of
intersecting objects.  Two classic optimisations from Brinkhoff et al.:

* **search-space restriction**: children are matched only within the
  intersection of the two current node MBRs;
* **plane sweep**: entries of both nodes are sorted by ``xmin`` and swept,
  so each entry is compared only against entries it can overlap on the
  x-axis instead of all ``C²`` combinations.

Trees of different heights are handled by descending only the deeper tree
until levels align.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..geometry import Rect
from ..index import RStarTree
from ..index.node import Node

__all__ = ["rtree_join"]


def rtree_join(
    tree_a: RStarTree, tree_b: RStarTree
) -> Iterator[tuple[Any, Any]]:
    """Yield every ``(item_a, item_b)`` whose rectangles intersect."""
    root_a, root_b = tree_a.root, tree_b.root
    if root_a.mbr is None or root_b.mbr is None:
        return
    if not root_a.mbr.intersects(root_b.mbr):
        return
    yield from _join_nodes(root_a, root_b, tree_a, tree_b)


def _join_nodes(
    node_a: Node, node_b: Node, tree_a: RStarTree, tree_b: RStarTree
) -> Iterator[tuple[Any, Any]]:
    tree_a.stats.node_reads += 1
    tree_b.stats.node_reads += 1
    if tree_a.pager is not None:
        tree_a.pager.access(id(node_a))
    if tree_b.pager is not None:
        tree_b.pager.access(id(node_b))
    if node_a.is_leaf and node_b.is_leaf:
        tree_a.stats.leaf_reads += 1
        tree_b.stats.leaf_reads += 1
        yield from _sweep_pairs(node_a, node_b)
        return
    if node_a.is_leaf or (not node_b.is_leaf and node_b.level > node_a.level):
        # descend only the deeper side until levels align
        assert node_a.mbr is not None
        for rect_b, child_b in node_b.entries():
            if rect_b.intersects(node_a.mbr):
                yield from _join_nodes(node_a, child_b, tree_a, tree_b)
        return
    if node_b.is_leaf or node_a.level > node_b.level:
        assert node_b.mbr is not None
        for rect_a, child_a in node_a.entries():
            if rect_a.intersects(node_b.mbr):
                yield from _join_nodes(child_a, node_b, tree_a, tree_b)
        return
    # same internal level: match children inside the nodes' common region
    assert node_a.mbr is not None and node_b.mbr is not None
    common = node_a.mbr.intersection(node_b.mbr)
    if common is None:
        return
    entries_a = [(r, c) for r, c in node_a.entries() if r.intersects(common)]
    entries_b = [(r, c) for r, c in node_b.entries() if r.intersects(common)]
    for rect_a, child_a, _rect_b, child_b in _sweep(entries_a, entries_b):
        yield from _join_nodes(child_a, child_b, tree_a, tree_b)


def _sweep_pairs(leaf_a: Node, leaf_b: Node) -> Iterator[tuple[Any, Any]]:
    for _ra, item_a, _rb, item_b in _sweep(list(leaf_a.entries()), list(leaf_b.entries())):
        yield item_a, item_b


def _sweep(
    entries_a: list[tuple[Rect, Any]], entries_b: list[tuple[Rect, Any]]
) -> Iterator[tuple[Rect, Any, Rect, Any]]:
    """Forward plane sweep over two x-sorted entry lists.

    Yields all 4-tuples ``(rect_a, payload_a, rect_b, payload_b)`` with
    intersecting rectangles.
    """
    entries_a = sorted(entries_a, key=lambda entry: entry[0].xmin)
    entries_b = sorted(entries_b, key=lambda entry: entry[0].xmin)
    index_a = index_b = 0
    while index_a < len(entries_a) and index_b < len(entries_b):
        rect_a, payload_a = entries_a[index_a]
        rect_b, payload_b = entries_b[index_b]
        if rect_a.xmin <= rect_b.xmin:
            # sweep rect_a against b-entries starting at index_b
            for other_rect, other_payload in entries_b[index_b:]:
                if other_rect.xmin > rect_a.xmax:
                    break
                if rect_a.ymin <= other_rect.ymax and other_rect.ymin <= rect_a.ymax:
                    yield rect_a, payload_a, other_rect, other_payload
            index_a += 1
        else:
            for other_rect, other_payload in entries_a[index_a:]:
                if other_rect.xmin > rect_b.xmax:
                    break
                if rect_b.ymin <= other_rect.ymax and other_rect.ymin <= rect_b.ymax:
                    yield other_rect, other_payload, rect_b, payload_b
            index_b += 1
