"""Pairwise R-tree join [BKS93] — the building block of PJM.

Synchronised depth-first traversal of two R-trees reporting all pairs of
intersecting objects.  Two classic optimisations from Brinkhoff et al.:

* **search-space restriction**: children are matched only within the
  intersection of the two current node MBRs;
* **plane sweep**: entries of both nodes are sorted by ``xmin`` and swept,
  so each entry is compared only against entries it can overlap on the
  x-axis instead of all ``C²`` combinations.

Trees of different heights are handled by descending only the deeper tree
until levels align.

Node-level filters (which entries can intersect the partner node's MBR or
the common clipping region) are evaluated with one vectorized kernel call
over the node's packed bounds array; pass ``use_kernels=False`` to
:func:`rtree_join` for the scalar reference behaviour.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from ..geometry import Rect
from ..geometry.kernels import split_columns, test_pairs, window_columns
from ..geometry.predicates import INTERSECTS
from ..index import RStarTree
from ..index.node import Node

__all__ = ["rtree_join"]


def rtree_join(
    tree_a: RStarTree, tree_b: RStarTree, use_kernels: bool = True
) -> Iterator[tuple[Any, Any]]:
    """Yield every ``(item_a, item_b)`` whose rectangles intersect."""
    root_a, root_b = tree_a.root, tree_b.root
    if root_a.mbr is None or root_b.mbr is None:
        return
    if not root_a.mbr.intersects(root_b.mbr):
        return
    yield from _join_nodes(root_a, root_b, tree_a, tree_b, use_kernels)


def _entries_intersecting(
    node: Node, window: Rect, use_kernels: bool
) -> list[tuple[Rect, Any]]:
    """The node's entries whose bounds intersect ``window``."""
    if use_kernels:
        mask = test_pairs(
            INTERSECTS, split_columns(node.bounds_array()), window_columns(window)
        )
        bounds, children = node.bounds, node.children
        return [
            (bounds[position], children[position]) for position in np.flatnonzero(mask)
        ]
    return [(rect, child) for rect, child in node.entries() if rect.intersects(window)]


def _join_nodes(
    node_a: Node, node_b: Node, tree_a: RStarTree, tree_b: RStarTree, use_kernels: bool
) -> Iterator[tuple[Any, Any]]:
    tree_a.stats.node_reads += 1
    tree_b.stats.node_reads += 1
    if tree_a.pager is not None:
        tree_a.pager.access(id(node_a))
    if tree_b.pager is not None:
        tree_b.pager.access(id(node_b))
    if node_a.is_leaf and node_b.is_leaf:
        tree_a.stats.leaf_reads += 1
        tree_b.stats.leaf_reads += 1
        yield from _sweep_pairs(node_a, node_b)
        return
    if node_a.is_leaf or (not node_b.is_leaf and node_b.level > node_a.level):
        # descend only the deeper side until levels align
        assert node_a.mbr is not None
        for _rect_b, child_b in _entries_intersecting(node_b, node_a.mbr, use_kernels):
            yield from _join_nodes(node_a, child_b, tree_a, tree_b, use_kernels)
        return
    if node_b.is_leaf or node_a.level > node_b.level:
        assert node_b.mbr is not None
        for _rect_a, child_a in _entries_intersecting(node_a, node_b.mbr, use_kernels):
            yield from _join_nodes(child_a, node_b, tree_a, tree_b, use_kernels)
        return
    # same internal level: match children inside the nodes' common region
    assert node_a.mbr is not None and node_b.mbr is not None
    common = node_a.mbr.intersection(node_b.mbr)
    if common is None:
        return
    entries_a = _entries_intersecting(node_a, common, use_kernels)
    entries_b = _entries_intersecting(node_b, common, use_kernels)
    entries_a.sort(key=lambda entry: entry[0].xmin)
    entries_b.sort(key=lambda entry: entry[0].xmin)
    for _rect_a, child_a, _rect_b, child_b in _sweep(entries_a, entries_b):
        yield from _join_nodes(child_a, child_b, tree_a, tree_b, use_kernels)


def _sweep_pairs(leaf_a: Node, leaf_b: Node) -> Iterator[tuple[Any, Any]]:
    entries_a = sorted(leaf_a.entries(), key=lambda entry: entry[0].xmin)
    entries_b = sorted(leaf_b.entries(), key=lambda entry: entry[0].xmin)
    for _ra, item_a, _rb, item_b in _sweep(entries_a, entries_b):
        yield item_a, item_b


def _sweep(
    entries_a: list[tuple[Rect, Any]], entries_b: list[tuple[Rect, Any]]
) -> Iterator[tuple[Rect, Any, Rect, Any]]:
    """Forward plane sweep over two x-sorted entry lists.

    Both inputs must already be sorted by ``xmin`` — callers sort once per
    node visit.  The inner scans are index-based (no per-step list slices,
    which used to make the sweep quadratic in allocation volume).

    Yields all 4-tuples ``(rect_a, payload_a, rect_b, payload_b)`` with
    intersecting rectangles.
    """
    length_a = len(entries_a)
    length_b = len(entries_b)
    index_a = index_b = 0
    while index_a < length_a and index_b < length_b:
        rect_a, payload_a = entries_a[index_a]
        rect_b, payload_b = entries_b[index_b]
        if rect_a.xmin <= rect_b.xmin:
            # sweep rect_a against b-entries starting at index_b
            scan = index_b
            while scan < length_b:
                other_rect, other_payload = entries_b[scan]
                if other_rect.xmin > rect_a.xmax:
                    break
                if rect_a.ymin <= other_rect.ymax and other_rect.ymin <= rect_a.ymax:
                    yield rect_a, payload_a, other_rect, other_payload
                scan += 1
            index_a += 1
        else:
            scan = index_a
            while scan < length_a:
                other_rect, other_payload = entries_a[scan]
                if other_rect.xmin > rect_b.xmax:
                    break
                if rect_b.ymin <= other_rect.ymax and other_rect.ymin <= rect_b.ymax:
                    yield other_rect, other_payload, rect_b, payload_b
                scan += 1
            index_b += 1
