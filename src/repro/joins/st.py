"""Synchronous Traversal (ST) — exact multiway join over R-tree nodes [PMT99].

ST descends all ``n`` R*-trees simultaneously: starting from the roots, it
finds combinations of entries (one per tree) whose MBRs pairwise satisfy the
query's filter conditions, and recurses on each qualifying combination until
the leaf level, where actual objects are reported.  The expensive part — up
to ``Cⁿ`` combinations per node-tuple — is tamed by backtracking with
forward pruning: a partial combination is extended only while every edge
into the chosen prefix remains satisfiable.

Restricted to all-``intersects`` queries (the paper's standard condition):
MBR intersection is then a sound and effective node-level filter.  Trees of
different heights are handled by holding leaf-level nodes fixed while deeper
trees keep descending.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..core.evaluator import QueryEvaluator
from ..geometry import Rect
from ..index.node import Node
from ..query import ProblemInstance

__all__ = ["synchronous_traversal_join"]


def synchronous_traversal_join(
    instance: ProblemInstance, evaluator: QueryEvaluator | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every exact solution of an all-``intersects`` join."""
    if not instance.query.all_intersects():
        raise ValueError(
            "synchronous traversal requires all-intersects queries; "
            "use window_reduction_join for other predicates"
        )
    evaluator = evaluator or QueryEvaluator(instance)
    roots = [tree.root for tree in evaluator.trees]
    if any(root.mbr is None for root in roots):
        return
    edge_lists = _edges_into_prefix(evaluator)
    yield from _descend(tuple(roots), evaluator, edge_lists)


def _edges_into_prefix(evaluator: QueryEvaluator) -> list[list[int]]:
    """``edge_lists[i]`` = join partners of variable ``i`` with index < i.

    Backtracking instantiates variables in index order, so only these edges
    need checking when variable ``i`` is chosen.
    """
    return [
        [j for j, _predicate in evaluator.neighbors[i] if j < i]
        for i in range(evaluator.num_variables)
    ]


def _descend(
    nodes: tuple[Node, ...],
    evaluator: QueryEvaluator,
    edge_lists: list[list[int]],
) -> Iterator[tuple[int, ...]]:
    for position, node in enumerate(nodes):
        tree = evaluator.trees[position]
        tree.stats.node_reads += 1
        if tree.pager is not None:
            tree.pager.access(id(node))
        if node.is_leaf:
            tree.stats.leaf_reads += 1
    if all(node.is_leaf for node in nodes):
        for combo in _qualifying_combinations(nodes, edge_lists, leaf=True):
            yield tuple(item for _rect, item in combo)
        return
    for combo in _qualifying_combinations(nodes, edge_lists, leaf=False):
        next_nodes = []
        for position, (rect, payload) in enumerate(combo):
            if isinstance(payload, Node):
                next_nodes.append(payload)
            else:
                # this tree bottomed out early: hold its leaf node fixed
                next_nodes.append(nodes[position])
        yield from _descend(tuple(next_nodes), evaluator, edge_lists)


def _qualifying_combinations(
    nodes: tuple[Node, ...],
    edge_lists: list[list[int]],
    leaf: bool,
) -> Iterator[list[tuple[Rect, Any]]]:
    """Backtrack over one entry per node such that all checked edges hold.

    At internal levels the check is MBR intersection (sound filter); at the
    leaf level it is the actual object intersection (exact).  When a tree
    has already reached its leaves while others are internal, the whole
    leaf node is offered as the single "entry" so the descent stays
    synchronous.
    """
    num_variables = len(nodes)
    entry_lists: list[list[tuple[Rect, Any]]] = []
    for position, node in enumerate(nodes):
        if leaf or not node.is_leaf:
            entry_lists.append(list(node.entries()))
        else:
            assert node.mbr is not None
            entry_lists.append([(node.mbr, node)])

    chosen: list[tuple[Rect, Any]] = []

    def backtrack(position: int) -> Iterator[list[tuple[Rect, Any]]]:
        if position == num_variables:
            yield list(chosen)
            return
        for rect, payload in entry_lists[position]:
            if all(rect.intersects(chosen[j][0]) for j in edge_lists[position]):
                chosen.append((rect, payload))
                yield from backtrack(position + 1)
                chosen.pop()

    yield from backtrack(0)
