"""Pairwise Join Method (PJM) — multiway joins from pairwise operators [MP99].

PJM processes a multiway join as a sequence of pairwise operations: an
R-tree join [BKS93] produces the first intermediate result, which is then
extended one variable at a time with index nested loop joins (window queries
against the next dataset's R*-tree), checking all query edges into the
already-joined prefix.

This is a faithful *simplification* of [MP99]: the original additionally
optimises the join order with a dynamic-programming planner over estimated
costs and offers hash-join operators for intermediate results; with the
paper's equal-size, equal-density synthetic datasets all orders have equal
estimated cost, so a connectivity-greedy order (seeded by the first edge)
captures the method's behaviour.  Exactness is what matters here: PJM is a
baseline that, like WR/ST, can only return exact solutions — the
shortcoming motivating the paper (§2: "PJM and any method based on pairwise
algorithms cannot be extended for approximate retrieval").
"""

from __future__ import annotations

from typing import Iterator

from ..core.evaluator import QueryEvaluator
from ..index.queries import search_predicate
from ..query import ProblemInstance

__all__ = ["pairwise_join_method"]

from .pairwise import rtree_join


def pairwise_join_method(
    instance: ProblemInstance, evaluator: QueryEvaluator | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every exact solution by composing pairwise joins.

    Requires the seed edge to be plain ``intersects`` (the R-tree join
    operator's condition); later edges may use any predicate.
    """
    evaluator = evaluator or QueryEvaluator(instance)
    query = instance.query
    seed_edge = _pick_seed_edge(evaluator)
    if seed_edge is None:
        raise ValueError(
            "pairwise_join_method needs at least one intersects edge to seed "
            "the R-tree join; use window_reduction_join instead"
        )
    first_i, first_j = seed_edge
    order = _attachment_order(evaluator, first_i, first_j)

    rects = evaluator.rects
    # intermediate result: list of partial assignments over `bound` variables
    bound = [first_i, first_j]
    partials: list[dict[int, int]] = [
        {first_i: item_i, first_j: item_j}
        for item_i, item_j in rtree_join(
            evaluator.trees[first_i], evaluator.trees[first_j]
        )
    ]

    for variable in order:
        edges = [
            (j, predicate)
            for j, predicate in evaluator.neighbors[variable]
            if j in set(bound)
        ]
        extended: list[dict[int, int]] = []
        for partial in partials:
            first_edge_j, first_predicate = edges[0]
            window = rects[first_edge_j][partial[first_edge_j]]
            rest = edges[1:]
            for rect, item in search_predicate(
                evaluator.trees[variable], first_predicate, window
            ):
                if all(
                    predicate.test(rect, rects[j][partial[j]])
                    for j, predicate in rest
                ):
                    new_partial = dict(partial)
                    new_partial[variable] = item
                    extended.append(new_partial)
        partials = extended
        bound.append(variable)
        if not partials:
            return

    for partial in partials:
        yield tuple(partial[v] for v in range(evaluator.num_variables))


def _pick_seed_edge(evaluator: QueryEvaluator) -> tuple[int, int] | None:
    """The first ``intersects`` edge, preferring high-degree endpoints."""
    best: tuple[int, int] | None = None
    best_degree = -1
    for i, j, predicate in evaluator.query.edges():
        if predicate.name != "intersects":
            continue
        degree = evaluator.degrees[i] + evaluator.degrees[j]
        if degree > best_degree:
            best_degree = degree
            best = (i, j)
    return best


def _attachment_order(
    evaluator: QueryEvaluator, first_i: int, first_j: int
) -> list[int]:
    """Greedy order of the remaining variables: most edges into the prefix
    first (every variable must touch the prefix — queries are connected)."""
    bound = {first_i, first_j}
    order = []
    while len(bound) < evaluator.num_variables:
        best_variable = -1
        best_key: tuple[int, int] | None = None
        for variable in range(evaluator.num_variables):
            if variable in bound:
                continue
            into_prefix = sum(
                1 for j, _predicate in evaluator.neighbors[variable] if j in bound
            )
            if into_prefix == 0:
                continue
            key = (-into_prefix, variable)
            if best_key is None or key < best_key:
                best_key = key
                best_variable = variable
        if best_variable < 0:
            raise ValueError("query graph is disconnected")
        order.append(best_variable)
        bound.add(best_variable)
    return order
