"""Exact multiway join baselines: brute force, WR, ST, pairwise/PJM."""

from .brute import brute_force_best, brute_force_join, count_exact_solutions
from .pairwise import rtree_join
from .pjm import pairwise_join_method
from .st import synchronous_traversal_join
from .wr import window_reduction_join

__all__ = [
    "brute_force_join",
    "brute_force_best",
    "count_exact_solutions",
    "rtree_join",
    "pairwise_join_method",
    "synchronous_traversal_join",
    "window_reduction_join",
]
