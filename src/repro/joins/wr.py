"""Window Reduction (WR) — systematic exact join via backtracking [PMT99].

WR "integrates the ideas of backtracking and index nested loop algorithms":
when a variable gets a value, that rectangle becomes a query *window* over
the next dataset's R*-tree; if a window query yields no candidate, search
backtracks.  This implementation instantiates variables in a
connectivity-maximising static order, so every variable after the first is
constrained by at least one window (for connected queries).

WR enumerates *exact* solutions only; the paper's point is precisely that
algorithms of this family cannot retrieve approximate answers (§2) — the
approximate generalisation is IBB in :mod:`repro.core.ibb`.
"""

from __future__ import annotations

from typing import Iterator

from ..core.evaluator import QueryEvaluator
from ..core.ibb import connectivity_order
from ..index.queries import search_predicate
from ..query import ProblemInstance

__all__ = ["window_reduction_join"]


def window_reduction_join(
    instance: ProblemInstance,
    evaluator: QueryEvaluator | None = None,
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield exact solutions; stops after ``limit`` solutions when given."""
    evaluator = evaluator or QueryEvaluator(instance)
    order = connectivity_order(evaluator)
    position_of = {variable: depth for depth, variable in enumerate(order)}
    earlier_neighbors = [
        [
            (j, predicate)
            for j, predicate in evaluator.neighbors[variable]
            if position_of[j] < position_of[variable]
        ]
        for variable in order
    ]
    num_variables = evaluator.num_variables
    rects = evaluator.rects
    values = [0] * num_variables
    emitted = 0

    def backtrack(depth: int) -> Iterator[tuple[int, ...]]:
        nonlocal emitted
        if depth == num_variables:
            emitted += 1
            yield tuple(values)
            return
        variable = order[depth]
        edges = earlier_neighbors[depth]
        if not edges:
            # only the first variable in a connected query is unconstrained
            candidates: Iterator[int] = iter(range(len(rects[variable])))
        else:
            candidates = _window_candidates(evaluator, variable, edges, values)
        for object_id in candidates:
            values[variable] = object_id
            yield from backtrack(depth + 1)
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(0)


def _window_candidates(evaluator, variable, edges, values) -> Iterator[int]:
    """Objects satisfying *all* instantiated conditions on ``variable``.

    One index window query on the most selective-looking edge (the first),
    filtered by direct predicate tests on the remaining edges — the index
    nested loop at the heart of WR.
    """
    first_j, first_predicate = edges[0]
    window = evaluator.rects[first_j][values[first_j]]
    rest = edges[1:]
    rects = evaluator.rects
    for rect, item in search_predicate(
        evaluator.trees[variable], first_predicate, window
    ):
        if all(
            predicate.test(rect, rects[j][values[j]]) for j, predicate in rest
        ):
            yield item
