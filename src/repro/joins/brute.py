"""Brute-force multiway join — the test oracle.

Enumerates the full Cartesian product, so it is only usable on tiny
instances; every other join algorithm in the library is validated against
it.  Also provides the exhaustive *best-approximate* search used as the
oracle for IBB.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.evaluator import QueryEvaluator
from ..query import ProblemInstance

__all__ = ["brute_force_join", "brute_force_best", "count_exact_solutions"]

#: refuse Cartesian products beyond this size (oracle misuse guard)
_MAX_TUPLES = 50_000_000


def _check_size(instance: ProblemInstance) -> None:
    total = 1
    for dataset in instance.datasets:
        total *= len(dataset)
        if total > _MAX_TUPLES:
            raise ValueError(
                f"brute force over > {_MAX_TUPLES} tuples; "
                "use WR/ST/PJM for instances this large"
            )


def brute_force_join(
    instance: ProblemInstance, evaluator: QueryEvaluator | None = None
) -> Iterator[tuple[int, ...]]:
    """Yield every exact solution of the join, in lexicographic order."""
    _check_size(instance)
    evaluator = evaluator or QueryEvaluator(instance)
    edges = list(instance.query.edges())
    rects = evaluator.rects
    domains = [range(len(dataset)) for dataset in instance.datasets]
    for values in itertools.product(*domains):
        if all(
            predicate.test(rects[i][values[i]], rects[j][values[j]])
            for i, j, predicate in edges
        ):
            yield values


def count_exact_solutions(
    instance: ProblemInstance, evaluator: QueryEvaluator | None = None
) -> int:
    """Number of exact solutions (used to verify hard-region generation)."""
    return sum(1 for _ in brute_force_join(instance, evaluator))


def brute_force_best(
    instance: ProblemInstance, evaluator: QueryEvaluator | None = None
) -> tuple[tuple[int, ...], int]:
    """The (lexicographically first) solution with minimum violations.

    The oracle for approximate retrieval: IBB run to exhaustion must match
    this violation count.
    """
    _check_size(instance)
    evaluator = evaluator or QueryEvaluator(instance)
    domains = [range(len(dataset)) for dataset in instance.datasets]
    best_values: tuple[int, ...] | None = None
    best_violations = evaluator.num_constraints + 1
    for values in itertools.product(*domains):
        violations = evaluator.count_violations(values)
        if violations < best_violations:
            best_violations = violations
            best_values = values
            if violations == 0:
                break
    assert best_values is not None
    return best_values, best_violations
