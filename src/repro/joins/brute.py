"""Brute-force multiway join — the test oracle.

Enumerates the full Cartesian product, so it is only usable on tiny
instances; every other join algorithm in the library is validated against
it.  Also provides the exhaustive *best-approximate* search used as the
oracle for IBB.

The default execution plan is a *broadcast join* over the columnar kernels:
each query edge is materialised once as a boolean predicate matrix
(:func:`repro.geometry.kernels.pair_matrix`), prefixes over the first
``n − 1`` variables are enumerated in lexicographic order with O(1) matrix
lookups, and the last variable is resolved for a whole prefix in one
vectorized conjunction.  ``use_kernels=False`` reinstates the original
object-at-a-time product scan; both paths enumerate identical tuples in
identical order.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from ..core.evaluator import QueryEvaluator
from ..geometry.kernels import pair_matrix
from ..query import ProblemInstance

__all__ = ["brute_force_join", "brute_force_best", "count_exact_solutions"]

#: refuse Cartesian products beyond this size (oracle misuse guard)
_MAX_TUPLES = 50_000_000


def _check_size(instance: ProblemInstance) -> None:
    total = 1
    for dataset in instance.datasets:
        total *= len(dataset)
        if total > _MAX_TUPLES:
            raise ValueError(
                f"brute force over > {_MAX_TUPLES} tuples; "
                "use WR/ST/PJM for instances this large"
            )


def _edge_matrices(instance: ProblemInstance) -> dict[tuple[int, int], np.ndarray]:
    """One boolean ``(Nᵢ, Nⱼ)`` predicate matrix per query edge, ``i < j``."""
    columns = [dataset.columns for dataset in instance.datasets]
    return {
        (i, j): pair_matrix(predicate, columns[i], columns[j])
        for i, j, predicate in instance.query.edges()
    }


def brute_force_join(
    instance: ProblemInstance,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
) -> Iterator[tuple[int, ...]]:
    """Yield every exact solution of the join, in lexicographic order."""
    _check_size(instance)
    evaluator = evaluator or QueryEvaluator(instance)
    if not use_kernels:
        edges = list(instance.query.edges())
        rects = evaluator.rects
        domains = [range(len(dataset)) for dataset in instance.datasets]
        for values in itertools.product(*domains):
            if all(
                predicate.test(rects[i][values[i]], rects[j][values[j]])
                for i, j, predicate in edges
            ):
                yield values
        return
    matrices = _edge_matrices(instance)
    last = instance.num_variables - 1
    prefix_edges = [pair for pair in matrices if pair[1] < last]
    last_edges = [(i, matrices[(i, j)]) for (i, j) in matrices if j == last]
    prefix_domains = [range(len(dataset)) for dataset in instance.datasets[:-1]]
    for prefix in itertools.product(*prefix_domains):
        if any(not matrices[(i, j)][prefix[i], prefix[j]] for i, j in prefix_edges):
            continue
        if last_edges:
            mask = last_edges[0][1][prefix[last_edges[0][0]]]
            for i, matrix in last_edges[1:]:
                mask = mask & matrix[prefix[i]]
            for value in np.flatnonzero(mask):
                yield prefix + (int(value),)
        else:  # pragma: no cover - connected queries always reach the last var
            for value in range(len(instance.datasets[-1])):
                yield prefix + (value,)


def count_exact_solutions(
    instance: ProblemInstance,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
) -> int:
    """Number of exact solutions (used to verify hard-region generation)."""
    return sum(1 for _ in brute_force_join(instance, evaluator, use_kernels))


def brute_force_best(
    instance: ProblemInstance,
    evaluator: QueryEvaluator | None = None,
    use_kernels: bool = True,
) -> tuple[tuple[int, ...], int]:
    """The (lexicographically first) solution with minimum violations.

    The oracle for approximate retrieval: IBB run to exhaustion must match
    this violation count.
    """
    _check_size(instance)
    evaluator = evaluator or QueryEvaluator(instance)
    if not use_kernels:
        domains = [range(len(dataset)) for dataset in instance.datasets]
        best_values: tuple[int, ...] | None = None
        best_violations = evaluator.num_constraints + 1
        for values in itertools.product(*domains):
            violations = evaluator.count_violations(values)
            if violations < best_violations:
                best_violations = violations
                best_values = values
                if violations == 0:
                    break
        assert best_values is not None
        return best_values, best_violations
    matrices = _edge_matrices(instance)
    last = instance.num_variables - 1
    prefix_edges = [pair for pair in matrices if pair[1] < last]
    last_edges = [(i, matrices[(i, j)]) for (i, j) in matrices if j == last]
    prefix_domains = [range(len(dataset)) for dataset in instance.datasets[:-1]]
    best_values = None
    best_violations = evaluator.num_constraints + 1
    for prefix in itertools.product(*prefix_domains):
        prefix_violations = sum(
            1 for i, j in prefix_edges if not matrices[(i, j)][prefix[i], prefix[j]]
        )
        if prefix_violations >= best_violations:
            continue  # the last variable can only add violations
        violations = np.full(
            len(instance.datasets[-1]), prefix_violations, dtype=np.intp
        )
        for i, matrix in last_edges:
            violations += ~matrix[prefix[i]]
        candidate = int(violations.min())
        if candidate < best_violations:
            best_violations = candidate
            best_values = prefix + (int(violations.argmin()),)
            if candidate == 0:
                break
    assert best_values is not None
    return best_values, best_violations
