"""Experiment drivers reproducing the paper's evaluation (§6).

Each ``run_fig*`` function regenerates one figure of the paper as structured
rows; ``benchmarks/bench_fig*.py`` and the CLI print them via
:mod:`repro.bench.reporting`.  All drivers accept a *scale* below the paper's
(smaller datasets, shorter time thresholds, fewer repetitions) because the
substrate is interpreted Python rather than the authors' C on a Pentium III —
``--paper-scale`` style settings are a matter of passing larger numbers.

The experiment grid follows the paper exactly:

* Figure 10a — best similarity vs number of variables (chains & cliques,
  time threshold ``10·n`` seconds, density set for ``Sol = 1``);
* Figure 10b — best similarity over time for ``n = 15``;
* Figure 10c — best similarity vs expected number of solutions;
* Figure 11 — time to retrieve the exact solution: IBB alone vs the
  two-step ILS+IBB / SEA+IBB methods on clique queries.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core import (
    Budget,
    GILSConfig,
    ILSConfig,
    RunResult,
    SEAConfig,
    guided_indexed_local_search,
    indexed_branch_and_bound,
    indexed_local_search,
    spatial_evolutionary_algorithm,
    two_step,
)
from ..query import ProblemInstance, QueryGraph, hard_instance, planted_instance

__all__ = [
    "HeuristicRunner",
    "default_heuristics",
    "QUERY_BUILDERS",
    "Fig10aConfig",
    "run_fig10a",
    "Fig10bConfig",
    "run_fig10b",
    "Fig10cConfig",
    "run_fig10c",
    "Fig11Config",
    "run_fig11",
]

#: signature shared by all heuristic entry points
HeuristicRunner = Callable[[ProblemInstance, Budget, int], RunResult]

QUERY_BUILDERS: dict[str, Callable[[int], QueryGraph]] = {
    "chain": QueryGraph.chain,
    "clique": QueryGraph.clique,
    "cycle": QueryGraph.cycle,
    "star": QueryGraph.star,
}


def default_heuristics(
    stop_on_exact: bool = True,
) -> dict[str, HeuristicRunner]:
    """The three algorithms compared throughout Figure 10."""
    return {
        "ILS": lambda instance, budget, seed: indexed_local_search(
            instance, budget, seed, ILSConfig(stop_on_exact=stop_on_exact)
        ),
        "GILS": lambda instance, budget, seed: guided_indexed_local_search(
            instance, budget, seed, GILSConfig(stop_on_exact=stop_on_exact)
        ),
        "SEA": lambda instance, budget, seed: spatial_evolutionary_algorithm(
            instance, budget, seed, SEAConfig(stop_on_exact=stop_on_exact)
        ),
    }


# ----------------------------------------------------------------------
# Figure 10a — similarity vs number of variables
# ----------------------------------------------------------------------
@dataclass
class Fig10aConfig:
    """Grid of experiment E1; paper values in comments."""

    query_types: Sequence[str] = ("chain", "clique")
    variable_counts: Sequence[int] = (5, 10, 15)  # paper: 5, 10, 15, 20, 25
    cardinality: int = 2_000  # paper: 100_000
    #: seconds of search per variable (paper: 10.0)
    time_per_variable: float = 0.2
    repetitions: int = 3  # paper: 100
    seed: int = 0
    heuristics: dict[str, HeuristicRunner] = field(default_factory=default_heuristics)


def run_fig10a(config: Fig10aConfig) -> list[dict]:
    """Rows: query type, n, density, mean similarity per algorithm."""
    rows = []
    for query_type in config.query_types:
        build = QUERY_BUILDERS[query_type]
        for num_variables in config.variable_counts:
            instance = hard_instance(
                build(num_variables),
                config.cardinality,
                seed=_instance_seed(config.seed, query_type, num_variables),
            )
            time_limit = config.time_per_variable * num_variables
            row = {
                "query": query_type,
                "n": num_variables,
                "density": instance.density,
                "time_limit": time_limit,
            }
            for name, runner in config.heuristics.items():
                results = [
                    runner(instance, Budget.seconds(time_limit), config.seed + rep)
                    for rep in range(config.repetitions)
                ]
                row[name] = statistics.fmean(r.best_similarity for r in results)
                row[f"{name} node_reads"] = statistics.fmean(
                    _node_reads(result) for result in results
                )
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 10b — similarity over time (n = 15)
# ----------------------------------------------------------------------
@dataclass
class Fig10bConfig:
    query_types: Sequence[str] = ("chain", "clique")
    num_variables: int = 15
    cardinality: int = 2_000
    #: total run time per query type (paper: chains 40 s, cliques 120 s)
    time_limits: dict[str, float] = field(
        default_factory=lambda: {"chain": 4.0, "clique": 8.0}
    )
    #: number of sample points on the time axis
    grid_points: int = 8
    repetitions: int = 3
    seed: int = 0
    heuristics: dict[str, HeuristicRunner] = field(
        default_factory=lambda: default_heuristics(stop_on_exact=False)
    )


def run_fig10b(config: Fig10bConfig) -> dict[str, dict]:
    """Per query type: the time grid and each algorithm's mean staircase."""
    output: dict[str, dict] = {}
    for query_type in config.query_types:
        build = QUERY_BUILDERS[query_type]
        instance = hard_instance(
            build(config.num_variables),
            config.cardinality,
            seed=_instance_seed(config.seed, query_type, config.num_variables),
        )
        time_limit = config.time_limits[query_type]
        grid = [
            time_limit * (index + 1) / config.grid_points
            for index in range(config.grid_points)
        ]
        series: dict[str, list[float]] = {}
        for name, runner in config.heuristics.items():
            sampled = [
                runner(
                    instance, Budget.seconds(time_limit), config.seed + rep
                ).trace.sample(grid)
                for rep in range(config.repetitions)
            ]
            series[name] = [
                statistics.fmean(run[index] for run in sampled)
                for index in range(config.grid_points)
            ]
        output[query_type] = {"grid": grid, "series": series}
    return output


# ----------------------------------------------------------------------
# Figure 10c — similarity vs expected number of solutions (n = 15)
# ----------------------------------------------------------------------
@dataclass
class Fig10cConfig:
    query_type: str = "clique"
    num_variables: int = 15
    cardinality: int = 2_000
    expected_solutions: Sequence[float] = (1.0, 10.0, 1e2, 1e3, 1e4, 1e5)
    time_limit: float = 3.0  # paper: 150 s (= 10·n)
    repetitions: int = 3
    seed: int = 0
    heuristics: dict[str, HeuristicRunner] = field(default_factory=default_heuristics)


def run_fig10c(config: Fig10cConfig) -> list[dict]:
    """Rows: target Sol, density, mean similarity per algorithm."""
    build = QUERY_BUILDERS[config.query_type]
    rows = []
    for target in config.expected_solutions:
        instance = hard_instance(
            build(config.num_variables),
            config.cardinality,
            seed=_instance_seed(config.seed, config.query_type, int(target)),
            target_solutions=target,
        )
        row = {
            "Sol": target,
            "density": instance.density,
        }
        for name, runner in config.heuristics.items():
            results = [
                runner(instance, Budget.seconds(config.time_limit), config.seed + rep)
                for rep in range(config.repetitions)
            ]
            row[name] = statistics.fmean(r.best_similarity for r in results)
            row[f"{name} node_reads"] = statistics.fmean(
                _node_reads(result) for result in results
            )
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 11 — time to retrieve the exact solution
# ----------------------------------------------------------------------
@dataclass
class Fig11Config:
    """Two-step methods vs plain IBB on clique queries with a planted
    exact solution (the paper uses instances whose actual solution count
    is 1)."""

    variable_counts: Sequence[int] = (3, 4, 5)  # paper: 5, 10, 15, 20, 25
    cardinality: int = 400  # paper: 100_000
    #: heuristic budgets (paper: ILS 1 s, SEA 10·n s)
    ils_time: float = 0.25
    sea_time_per_variable: float = 0.4
    #: cap on each systematic search, seconds (the paper lets IBB run for
    #: hours; a cap keeps benches bounded — capped runs report the cap)
    ibb_time_cap: float = 60.0
    repetitions: int = 3  # paper: 10
    seed: int = 0


def run_fig11(config: Fig11Config) -> list[dict]:
    """Rows: n, mean seconds to exact solution for IBB / ILS+IBB / SEA+IBB."""
    rows = []
    for num_variables in config.variable_counts:
        times: dict[str, list[float]] = {"IBB": [], "ILS+IBB": [], "SEA+IBB": []}
        exact: dict[str, int] = {"IBB": 0, "ILS+IBB": 0, "SEA+IBB": 0}
        for rep in range(config.repetitions):
            instance = planted_instance(
                QueryGraph.clique(num_variables),
                config.cardinality,
                seed=_instance_seed(config.seed + rep, "fig11", num_variables),
            )
            plain = indexed_branch_and_bound(
                instance, budget=Budget.seconds(config.ibb_time_cap)
            )
            times["IBB"].append(plain.elapsed)
            exact["IBB"] += plain.is_exact

            for label, heuristic, heuristic_time in (
                ("ILS+IBB", "ils", config.ils_time),
                (
                    "SEA+IBB",
                    "sea",
                    config.sea_time_per_variable * num_variables,
                ),
            ):
                combined = two_step(
                    instance,
                    heuristic,
                    heuristic_budget=Budget.seconds(heuristic_time),
                    systematic_budget=Budget.seconds(config.ibb_time_cap),
                    seed=config.seed + rep,
                )
                times[label].append(combined.total_elapsed)
                exact[label] += combined.is_exact
        row = {"n": num_variables}
        for label in ("IBB", "ILS+IBB", "SEA+IBB"):
            row[label] = statistics.fmean(times[label])
            row[f"{label} exact"] = f"{exact[label]}/{config.repetitions}"
        rows.append(row)
    return rows


def _node_reads(result: RunResult) -> int:
    """R*-tree node accesses of one run (``stats["index"]`` delta)."""
    index_work = result.stats.get("index")
    if isinstance(index_work, dict):
        return int(index_work.get("node_reads", 0))
    return 0


def _instance_seed(base: int, tag: str, value: int) -> int:
    """Stable per-cell instance seed derived from a human-readable tag."""
    return random.Random(f"{base}/{tag}/{value}").randrange(2**31)
