"""Diff a benchmark ledger against a committed baseline.

``repro bench compare`` is the CI regression gate: it pairs the latest
row per ``(bench, section)`` in the current ledger with the baseline's,
computes the relative delta, and fails (exit 1) when any *gated* section
— one whose ``better`` direction is declared — moved more than the
threshold in the wrong direction.  Everything else is reported but never
fails the build:

``ok``           within the threshold (a delta of exactly the threshold
                 still passes — the gate is *strictly more than*).
``regressed``    moved > threshold against its ``better`` direction.
``improved``     moved > threshold in its favour (informational).
``new``          section in the current ledger only.
``removed``      section in the baseline only.
``skipped``      not comparable: measured at a different
                 ``REPRO_BENCH_SCALE`` than the baseline (the workloads
                 differ), or an absolute-time section measured on a
                 different host (wall seconds only compare on the same
                 machine; dimensionless ratios — speedups, percentages —
                 compare everywhere).
``untracked``    ``better`` is null on both sides: tracked in the
                 trajectory, exempt from gating by design (figure
                 similarities, shed counts, noisy one-shot timings).

Two thresholds, by unit class.  Best-of-N wall timings of 10–30 ms
sections swing 10–50 % run-to-run on shared/virtualised runners — a
tight gate on them is pure flake.  So ``threshold_pct`` (the CLI's
``--threshold``, default 10 %) applies to *stable* units — dimensionless
ratios and counts — while :data:`TIME_UNITS` rows gate against the
looser ``time_threshold_pct`` (``--time-threshold``, default 75 %), a
catastrophic-only guard that still catches the failure mode it exists
for (a vectorised path silently falling back to scalar is a 3–10×
slowdown) without failing CI on scheduler noise.

:func:`summarize_ledger` is the ``repro bench ledger`` half: the
trajectory grouped by run (and commit) across the whole file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from .reporting import format_table

__all__ = [
    "CompareEntry",
    "CompareResult",
    "compare_ledgers",
    "latest_rows",
    "format_compare",
    "summarize_ledger",
    "section_series",
    "TIME_UNITS",
    "DEFAULT_TIME_THRESHOLD_PCT",
]

#: units carrying absolute wall time (or its reciprocal — a throughput
#: rate is just wall-clock divided out of a fixed request count) —
#: host-bound, only comparable when the environment fingerprint
#: (machine + platform) matches, and gated against the looser
#: ``time_threshold_pct`` noise floor
TIME_UNITS = frozenset({"s", "ms", "us", "ns", "s/call", "ns/call", "req/s"})

#: default noise floor for wall-clock sections (percent) — above every
#: run-to-run spread observed on loaded runners, below any real blow-up
DEFAULT_TIME_THRESHOLD_PCT = 75.0


@dataclass
class CompareEntry:
    """One ``(bench, section)`` pairing of baseline and current rows."""

    bench: str
    section: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    delta_pct: Optional[float] = None
    better: Optional[str] = None
    unit: str = ""


@dataclass
class CompareResult:
    """Everything ``repro bench compare`` reports and gates on."""

    threshold_pct: float
    time_threshold_pct: float = DEFAULT_TIME_THRESHOLD_PCT
    entries: list[CompareEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[CompareEntry]:
        return [entry for entry in self.entries if entry.status == "regressed"]

    @property
    def failed(self) -> bool:
        return bool(self.regressions)


def latest_rows(
    rows: Iterable[Mapping[str, Any]],
) -> dict[tuple[str, str], dict[str, Any]]:
    """The last row per ``(bench, section)`` — later lines supersede earlier."""
    latest: dict[tuple[str, str], dict[str, Any]] = {}
    for row in rows:
        latest[(str(row["bench"]), str(row["section"]))] = dict(row)
    return latest


def compare_ledgers(
    baseline_rows: Iterable[Mapping[str, Any]],
    current_rows: Iterable[Mapping[str, Any]],
    threshold_pct: float = 10.0,
    time_threshold_pct: float = DEFAULT_TIME_THRESHOLD_PCT,
) -> CompareResult:
    """Pair the latest rows of both ledgers and classify every section.

    ``threshold_pct`` gates stable (dimensionless) units;
    ``time_threshold_pct`` gates :data:`TIME_UNITS` rows — see the module
    docstring for why wall-clock sections get the looser floor.
    """
    for name, value in (("threshold", threshold_pct),
                        ("time threshold", time_threshold_pct)):
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    baseline = latest_rows(baseline_rows)
    current = latest_rows(current_rows)
    result = CompareResult(
        threshold_pct=threshold_pct, time_threshold_pct=time_threshold_pct
    )
    for key in sorted(set(baseline) | set(current)):
        bench, section = key
        base_row = baseline.get(key)
        cur_row = current.get(key)
        if base_row is None:
            assert cur_row is not None
            result.entries.append(CompareEntry(
                bench, section, "new",
                current=float(cur_row["value"]),
                better=cur_row.get("better"),
                unit=str(cur_row.get("unit", "")),
            ))
            continue
        if cur_row is None:
            result.entries.append(CompareEntry(
                bench, section, "removed",
                baseline=float(base_row["value"]),
                better=base_row.get("better"),
                unit=str(base_row.get("unit", "")),
            ))
            continue
        entry = CompareEntry(
            bench, section, "ok",
            baseline=float(base_row["value"]),
            current=float(cur_row["value"]),
            better=cur_row.get("better") or base_row.get("better"),
            unit=str(cur_row.get("unit", "")),
        )
        base_env = base_row.get("env", {})
        cur_env = cur_row.get("env", {})
        incomparable = base_env.get("scale") != cur_env.get("scale") or (
            entry.unit in TIME_UNITS
            and (base_env.get("machine"), base_env.get("platform"))
            != (cur_env.get("machine"), cur_env.get("platform"))
        )
        if incomparable:
            entry.status = "skipped"
            result.entries.append(entry)
            continue
        entry.delta_pct = _delta_pct(entry.baseline, entry.current)
        gate_pct = (
            time_threshold_pct if entry.unit in TIME_UNITS else threshold_pct
        )
        if entry.better not in ("lower", "higher"):
            entry.status = "untracked"
        elif entry.delta_pct is None:
            entry.status = "ok"
        else:
            worse = (
                entry.delta_pct if entry.better == "lower" else -entry.delta_pct
            )
            if worse > gate_pct:
                entry.status = "regressed"
            elif -worse > gate_pct:
                entry.status = "improved"
        result.entries.append(entry)
    return result


def _delta_pct(baseline: Optional[float], current: Optional[float]) -> Optional[float]:
    if baseline is None or current is None:
        return None
    if baseline == 0:
        return None if current == 0 else float("inf") if current > 0 else float("-inf")
    return 100.0 * (current - baseline) / abs(baseline)


def format_compare(result: CompareResult) -> str:
    """The readable per-section table ``repro bench compare`` prints."""
    rows = []
    for entry in result.entries:
        rows.append([
            entry.bench,
            entry.section,
            "-" if entry.baseline is None else f"{entry.baseline:.6g}",
            "-" if entry.current is None else f"{entry.current:.6g}",
            entry.unit,
            "-" if entry.delta_pct is None else f"{entry.delta_pct:+.1f}%",
            entry.better or "-",
            entry.status.upper() if entry.status == "regressed" else entry.status,
        ])
    table = format_table(
        f"bench compare — threshold {result.threshold_pct:g}%, "
        f"time threshold {result.time_threshold_pct:g}% "
        f"({len(result.regressions)} regression(s))",
        ["bench", "section", "baseline", "current", "unit", "delta", "better",
         "status"],
        rows,
    )
    return table


def summarize_ledger(
    rows: Iterable[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Group a ledger into its trajectory: one summary dict per run.

    Runs keep file order (appended chronologically); each summary carries
    the run id, commit, first timestamp, the bench families measured and
    the row count — the view ``repro bench ledger`` renders.
    """
    runs: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    for row in rows:
        run_id = str(row["run_id"])
        summary = runs.get(run_id)
        if summary is None:
            summary = runs[run_id] = {
                "run_id": run_id,
                "commit": row.get("commit"),
                "ts": float(row["ts"]),
                "benches": set(),
                "rows": 0,
                "scale": row.get("env", {}).get("scale"),
            }
            order.append(run_id)
        summary["rows"] += 1
        summary["benches"].add(str(row["bench"]))
        summary["ts"] = min(summary["ts"], float(row["ts"]))
    summaries = [runs[run_id] for run_id in order]
    for summary in summaries:
        summary["benches"] = sorted(summary["benches"])
    return summaries


def section_series(
    rows: Iterable[Mapping[str, Any]],
    bench: str,
    section: str,
) -> list[dict[str, Any]]:
    """One section's value across every run — the per-metric trajectory."""
    return [
        {
            "run_id": row["run_id"],
            "commit": row.get("commit"),
            "ts": row["ts"],
            "value": row["value"],
            "unit": row.get("unit", ""),
        }
        for row in rows
        if str(row["bench"]) == bench and str(row["section"]) == section
    ]
