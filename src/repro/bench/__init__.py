"""Experiment harness: drivers for every paper figure + table rendering."""

from .reporting import format_series, format_table, write_csv, write_json
from .runner import (
    Fig10aConfig,
    Fig10bConfig,
    Fig10cConfig,
    Fig11Config,
    QUERY_BUILDERS,
    default_heuristics,
    run_fig10a,
    run_fig10b,
    run_fig10c,
    run_fig11,
)

__all__ = [
    "format_table",
    "format_series",
    "write_csv",
    "write_json",
    "Fig10aConfig",
    "run_fig10a",
    "Fig10bConfig",
    "run_fig10b",
    "Fig10cConfig",
    "run_fig10c",
    "Fig11Config",
    "run_fig11",
    "QUERY_BUILDERS",
    "default_heuristics",
]
