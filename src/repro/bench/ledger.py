"""The perf-trajectory ledger: schema-versioned benchmark rows as JSONL.

Every measured benchmark section becomes one flat JSON row — the bench
counterpart of the obs event schema (:mod:`repro.obs.events`), with the
same strictness contract: a fixed ``v`` schema version, required typed
fields, booleans rejected where numbers are expected, unknown extra
fields allowed for forward compatibility.  A row looks like::

    {"v": 1, "run_id": "689a0c3e-00042", "ts": 1754650000.0,
     "commit": "61e63b8", "bench": "kernels",
     "section": "count_violations_batch[2000]",
     "value": 4.7e-05, "unit": "s", "better": "lower",
     "timer": {"repeats": 3, "p50": 5.1e-05, "min": 4.7e-05},
     "env": {"python": "3.11.7", "numpy": "2.4.6", "scale": 1.0, ...},
     "meta": {...}, "metrics": {...}}

``value`` is the section's headline number (best-of-N seconds, a speedup,
a percentage — ``unit`` says which); ``better`` declares the regression
direction ``repro bench compare`` gates on (``"lower"`` / ``"higher"``),
or ``None`` for informational rows that are tracked but never fail CI.
``timer`` carries the repeat statistics when the value came from a timing
loop.  ``env`` fingerprints the host so cross-machine rows are never
silently compared, and ``metrics``/``meta`` attach the obs snapshot and
free-form section context.

Benchmarks emit through :func:`emit_sections`, which stamps the shared
fields (run id, commit, timestamp, environment), appends to the ledger
(``REPRO_LEDGER_PATH``, default ``BENCH_ledger.jsonl``) and still writes
the legacy per-family ``BENCH_*.json`` payload so existing dashboards
keep working.  ``repro bench compare`` diffs the latest rows against
``benchmarks/BASELINE.jsonl``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = [
    "LEDGER_VERSION",
    "DEFAULT_LEDGER_NAME",
    "LEDGER_PATH_ENV",
    "RUN_ID_ENV",
    "LedgerWriter",
    "validate_row",
    "read_ledger",
    "emit_sections",
    "timer_stats",
    "environment_fingerprint",
    "git_commit",
    "new_run_id",
    "ledger_path",
]

#: bump when the row layout changes incompatibly
LEDGER_VERSION = 1

#: environment variable overriding where rows are appended
LEDGER_PATH_ENV = "REPRO_LEDGER_PATH"

#: environment variable sharing one run id across benchmark subprocesses
RUN_ID_ENV = "REPRO_BENCH_RUN_ID"

DEFAULT_LEDGER_NAME = "BENCH_ledger.jsonl"

#: accepted values of the ``better`` gating direction
BETTER_DIRECTIONS = ("lower", "higher")

_FieldSpec = dict[str, tuple[type, ...]]

_REQUIRED_FIELDS: _FieldSpec = {
    "v": (int,),
    "run_id": (str,),
    "ts": (int, float),
    "commit": (str, type(None)),
    "bench": (str,),
    "section": (str,),
    "value": (int, float),
    "unit": (str,),
    "better": (str, type(None)),
    "env": (dict,),
}

#: optional fields validated when present (``None`` always accepted)
_OPTIONAL_FIELDS: _FieldSpec = {
    "timer": (dict, type(None)),
    "meta": (dict, type(None)),
    "metrics": (dict, type(None)),
}

_TIMER_FIELDS: _FieldSpec = {
    "repeats": (int,),
    "p50": (int, float),
    "min": (int, float),
}

_ENV_FIELDS: _FieldSpec = {
    "python": (str,),
    "numpy": (str,),
    "scale": (int, float),
}


def validate_row(row: object) -> dict[str, Any]:
    """Check one ledger row against the schema; returns it, raises ``ValueError``.

    Mirrors :func:`repro.obs.events.validate_event`: booleans are rejected
    where numbers are expected, unknown extra fields pass through.  Timer
    stats additionally must be internally consistent — at least one
    repeat, and ``min`` never above ``p50`` (a non-monotonic pair means
    the repeats were aggregated wrong).
    """
    if not isinstance(row, dict):
        raise ValueError(f"ledger row must be an object, got {type(row).__name__}")
    version = row.get("v")
    if version != LEDGER_VERSION:
        raise ValueError(f"unsupported ledger schema version {version!r}")
    _check_fields(row, _REQUIRED_FIELDS, "row")
    for field, accepted in _OPTIONAL_FIELDS.items():
        if field in row:
            value = row[field]
            if isinstance(value, bool) or not isinstance(value, accepted):
                raise ValueError(f"row field {field!r} has invalid value {value!r}")
    better = row["better"]
    if better is not None and better not in BETTER_DIRECTIONS:
        raise ValueError(
            f"better must be one of {BETTER_DIRECTIONS} or null, got {better!r}"
        )
    _check_fields(row["env"], _ENV_FIELDS, "env")
    timer = row.get("timer")
    if timer is not None:
        _check_fields(timer, _TIMER_FIELDS, "timer")
        if timer["repeats"] < 1:
            raise ValueError(f"timer.repeats must be >= 1, got {timer['repeats']!r}")
        if timer["min"] > timer["p50"]:
            raise ValueError(
                f"non-monotonic timer stats: min {timer['min']!r} exceeds "
                f"p50 {timer['p50']!r}"
            )
    return row


def _check_fields(mapping: Mapping[str, Any], spec: _FieldSpec, where: str) -> None:
    for field, accepted in spec.items():
        if field not in mapping:
            raise ValueError(f"{where} is missing field {field!r}")
        value = mapping[field]
        if isinstance(value, bool) or not isinstance(value, accepted):
            raise ValueError(f"{where} field {field!r} has invalid value {value!r}")


def read_ledger(path: str, validate: bool = True) -> list[dict[str, Any]]:
    """Parse (and by default validate) every row of a JSONL ledger file."""
    rows: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {error}") from None
            if validate:
                try:
                    validate_row(row)
                except ValueError as error:
                    raise ValueError(f"{path}:{line_number}: {error}") from None
            rows.append(row)
    return rows


class LedgerWriter:
    """Append-mode JSONL row writer — validates every row before writing."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def write(self, row: dict[str, Any]) -> dict[str, Any]:
        validate_row(row)
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        return row

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def timer_stats(samples: Sequence[float]) -> dict[str, Any]:
    """Collapse raw timing repeats into the ledger's ``timer`` stats."""
    if not samples:
        raise ValueError("timer_stats needs at least one sample")
    return {
        "repeats": len(samples),
        "p50": float(statistics.median(samples)),
        "min": float(min(samples)),
    }


def environment_fingerprint() -> dict[str, Any]:
    """Host/python/numpy fingerprint stamped onto every row.

    ``scale`` records the ``REPRO_BENCH_SCALE`` the numbers were measured
    at — ``bench compare`` refuses to diff rows measured at different
    scales (the workload sizes differ).
    """
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "1.0")),
    }


def git_commit(cwd: Optional[str] = None) -> Optional[str]:
    """Short commit hash of the tree the benchmarks ran from, or ``None``."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def new_run_id() -> str:
    """One id shared by every row of one benchmark invocation.

    ``repro bench run`` exports :data:`RUN_ID_ENV` so all benchmark
    subprocesses of one invocation land under the same id; a directly
    invoked benchmark derives a start-time/pid id (no RNG involved —
    RL001 applies to ``src/``).
    """
    from_env = os.environ.get(RUN_ID_ENV)
    if from_env:
        return from_env
    return f"{int(time.time()):08x}-{os.getpid():05d}"


def ledger_path(default_dir: Optional[str] = None) -> str:
    """Resolve where rows are appended: env override, else the default name."""
    from_env = os.environ.get(LEDGER_PATH_ENV)
    if from_env:
        return from_env
    return os.path.join(default_dir or os.getcwd(), DEFAULT_LEDGER_NAME)


def emit_sections(
    bench: str,
    sections: Iterable[Mapping[str, Any]],
    *,
    ledger: Optional[str] = None,
    legacy_path: Optional[str] = None,
    legacy_payload: Optional[dict[str, Any]] = None,
) -> list[dict[str, Any]]:
    """Persist one benchmark family's measured sections.

    Each section mapping needs ``section``/``value``/``unit`` and may carry
    ``better`` (gating direction, default ``None``), ``timer`` (from
    :func:`timer_stats`) and ``meta``.  The shared fields — run id, commit,
    timestamp, environment fingerprint, and the active observation's metric
    snapshot (with ``service.solve`` latency percentiles when the sink
    recorded them) — are stamped here, once, identically onto every row.

    Rows are appended to the ledger (``ledger`` argument, else
    :data:`LEDGER_PATH_ENV`, else ``BENCH_ledger.jsonl`` next to
    ``legacy_path`` or in the working directory).  When ``legacy_path`` is
    given the pre-ledger ``BENCH_*.json`` payload (``legacy_payload`` or
    ``{"sections": [...]}``) is written too, via
    :func:`repro.bench.reporting.write_json`.
    """
    from ..obs import current
    from ..obs.report import service_latency
    from .reporting import write_json

    sections = [dict(section) for section in sections]
    metrics: Optional[dict[str, Any]] = None
    observation = current()
    if observation.enabled:
        metrics = observation.registry.snapshot()
        records = getattr(observation.sink, "records", None)
        if records:
            latency = service_latency(records)
            if latency is not None:
                metrics["latency"] = latency

    run_id = new_run_id()
    commit = git_commit()
    stamp = time.time()
    env = environment_fingerprint()

    rows: list[dict[str, Any]] = []
    for section in sections:
        row: dict[str, Any] = {
            "v": LEDGER_VERSION,
            "run_id": run_id,
            "ts": stamp,
            "commit": commit,
            "bench": bench,
            "section": str(section["section"]),
            "value": section["value"],
            "unit": str(section["unit"]),
            "better": section.get("better"),
            "env": env,
        }
        for optional in ("timer", "meta"):
            if section.get(optional) is not None:
                row[optional] = section[optional]
        if metrics is not None:
            row["metrics"] = metrics
        rows.append(row)

    default_dir = os.path.dirname(os.path.abspath(legacy_path)) if legacy_path else None
    target = ledger or ledger_path(default_dir)
    with LedgerWriter(target) as writer:
        for row in rows:
            writer.write(row)

    if legacy_path is not None:
        write_json(legacy_path, legacy_payload or {"sections": sections})
    return rows
