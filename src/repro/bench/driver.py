"""Discover and execute the benchmark files behind ``repro bench run``.

Each ``benchmarks/bench_*.py`` file is a pytest module; the driver runs
every selected file in its own subprocess (the benches start servers,
process pools and shared-memory planes — isolation keeps one family's
crash from poisoning the next) with the ledger environment exported:

* :data:`~repro.bench.ledger.LEDGER_PATH_ENV` — all families append to
  one ledger file;
* :data:`~repro.bench.ledger.RUN_ID_ENV` — all rows of the invocation
  share one run id;
* ``REPRO_BENCH_SCALE`` — the workload scale, stamped into each row's
  environment fingerprint.

The *smoke* tier is the CI-speed subset: fast, socket-free families that
finish in well under a minute at scale 0.1.  ``full`` runs everything
discovered.
"""

from __future__ import annotations

import os
import subprocess
import sys
from typing import Optional, Sequence

from .ledger import LEDGER_PATH_ENV, RUN_ID_ENV, new_run_id

__all__ = ["TIERS", "discover_benchmarks", "run_benchmarks", "BenchOutcome"]

#: named benchmark subsets: family names (the ``bench_<name>.py`` stem tail)
TIERS: dict[str, Optional[tuple[str, ...]]] = {
    "smoke": ("kernels", "obs_overhead", "faults"),
    "full": None,
}


class BenchOutcome:
    """One benchmark file's subprocess result."""

    def __init__(self, path: str, returncode: int) -> None:
        self.path = path
        self.returncode = returncode

    @property
    def ok(self) -> bool:
        return self.returncode == 0

    @property
    def family(self) -> str:
        stem = os.path.splitext(os.path.basename(self.path))[0]
        return stem[len("bench_"):] if stem.startswith("bench_") else stem


def discover_benchmarks(
    directory: str,
    tier: str = "full",
    only: Optional[Sequence[str]] = None,
) -> list[str]:
    """``bench_*.py`` files under ``directory``, filtered by tier or name.

    ``only`` names win over the tier: ``--only kernels warm`` runs exactly
    those families.  Unknown names raise — a typo must not silently run
    nothing.
    """
    if tier not in TIERS:
        raise ValueError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
    files = sorted(
        entry
        for entry in os.listdir(directory)
        if entry.startswith("bench_") and entry.endswith(".py")
    )
    families = {entry[len("bench_"):-len(".py")]: entry for entry in files}
    if only:
        missing = sorted(set(only) - set(families))
        if missing:
            raise ValueError(
                f"unknown benchmark(s) {missing}; available: {sorted(families)}"
            )
        selected = [families[name] for name in only]
    else:
        wanted = TIERS[tier]
        if wanted is None:
            selected = list(files)
        else:
            missing = sorted(set(wanted) - set(families))
            if missing:
                raise ValueError(
                    f"tier {tier!r} expects benchmark(s) {missing} that are "
                    f"not in {directory}"
                )
            selected = [families[name] for name in wanted]
    return [os.path.join(directory, entry) for entry in selected]


def run_benchmarks(
    files: Sequence[str],
    *,
    ledger: str,
    run_id: Optional[str] = None,
    scale: Optional[float] = None,
    python: Optional[str] = None,
    extra_env: Optional[dict[str, str]] = None,
) -> list[BenchOutcome]:
    """Run each benchmark file through pytest in a subprocess.

    Returns one :class:`BenchOutcome` per file, in order; the caller
    decides whether a non-zero pytest exit fails the whole run.
    """
    env = dict(os.environ)
    env[LEDGER_PATH_ENV] = os.path.abspath(ledger)
    env[RUN_ID_ENV] = run_id or new_run_id()
    if scale is not None:
        env["REPRO_BENCH_SCALE"] = repr(float(scale))
    src = os.path.join(_repo_root(), "src")
    if os.path.isdir(src):
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if extra_env:
        env.update(extra_env)
    outcomes = []
    for path in files:
        completed = subprocess.run(
            [python or sys.executable, "-m", "pytest", os.path.abspath(path), "-q"],
            env=env,
            cwd=_repo_root(),
        )
        outcomes.append(BenchOutcome(path, completed.returncode))
    return outcomes


def _repo_root() -> str:
    """The tree the benchmarks live in: ``…/src/repro/bench`` → ``…``."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.abspath(os.path.join(here, "..", "..", ".."))
