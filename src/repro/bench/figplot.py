"""Plain-text figure rendering for the ``runs/`` reproduction harness.

The container image this repo targets does not ship matplotlib, so every
``runs/<figure>/plot.py`` renders an ASCII chart first — it always works,
is diffable in git, and greppable in CI logs — and upgrades to a PNG only
when matplotlib happens to be importable (:func:`save_png` returns False
otherwise, so callers degrade gracefully instead of crashing).

:func:`ascii_chart` plots several named series over a shared x-axis on a
character canvas, one marker per series, with interpolated "." segments
between consecutive points so the paper's curve shapes stay visible at
terminal resolution.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

__all__ = ["ascii_chart", "have_matplotlib", "save_png"]

#: one marker per series, cycled in declaration order
MARKERS = "ox+*#@%&"


def _axis_value(value: float, log: bool) -> float:
    return math.log10(value) if log else float(value)


def ascii_chart(
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[Optional[float]]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
    logy: bool = False,
) -> str:
    """Render named series over a shared x-axis as a character canvas.

    ``series`` maps a legend name to y-values aligned with ``xs``; ``None``
    entries are simply skipped (a point the run did not measure).  Log axes
    plot ``log10`` of the values but label ticks with the raw numbers.
    """
    points = [
        (name, _axis_value(x, logx), _axis_value(y, logy))
        for name, ys in series.items()
        for x, y in zip(xs, ys)
        if y is not None
    ]
    if not points:
        return f"{title}\n(no data)"
    x_lo = min(p[1] for p in points)
    x_hi = max(p[1] for p in points)
    y_lo = min(p[2] for p in points)
    y_hi = max(p[2] for p in points)
    if y_hi == y_lo:  # flat data still deserves a visible line
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    def col(x: float) -> int:
        if x_hi == x_lo:
            return width // 2
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_lo) / (y_hi - y_lo) * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    markers = {name: MARKERS[i % len(MARKERS)] for i, name in enumerate(series)}
    # interpolated segments first, so real data points overwrite them
    for name, ys in series.items():
        chain = [
            (col(_axis_value(x, logx)), row(_axis_value(y, logy)))
            for x, y in zip(xs, ys)
            if y is not None
        ]
        for (c0, r0), (c1, r1) in zip(chain, chain[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0))
            for step in range(1, steps):
                c = c0 + round((c1 - c0) * step / steps)
                r = r0 + round((r1 - r0) * step / steps)
                if canvas[r][c] == " ":
                    canvas[r][c] = "."
    for name, x, y in points:
        canvas[row(y)][col(x)] = markers[name]

    def tick(value: float, log: bool) -> str:
        return f"{10.0 ** value:g}" if log else f"{value:g}"

    lines = [title]
    label_width = max(len(tick(y_hi, logy)), len(tick(y_lo, logy)), len(y_label))
    lines.append(f"{y_label.rjust(label_width)} |")
    for index, canvas_row in enumerate(canvas):
        if index == 0:
            label = tick(y_hi, logy)
        elif index == height - 1:
            label = tick(y_lo, logy)
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(canvas_row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    left = tick(x_lo, logx)
    right = tick(x_hi, logx)
    gap = max(1, width - len(left) - len(right))
    lines.append(f"{' ' * label_width}  {left}{' ' * gap}{right}  ({x_label})")
    legend = "   ".join(f"{markers[name]} = {name}" for name in series)
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)


def have_matplotlib() -> bool:
    """True when matplotlib is importable (it is not baked into the image)."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def save_png(
    path: str,
    title: str,
    xs: Sequence[float],
    series: Mapping[str, Sequence[Optional[float]]],
    *,
    x_label: str = "x",
    y_label: str = "y",
    logx: bool = False,
    logy: bool = False,
) -> bool:
    """Render the same chart as a PNG; returns False when matplotlib is absent."""
    if not have_matplotlib():
        return False
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figure, axes = plt.subplots(figsize=(6.4, 4.0))
    for name, ys in series.items():
        pairs = [(x, y) for x, y in zip(xs, ys) if y is not None]
        axes.plot([p[0] for p in pairs], [p[1] for p in pairs],
                  marker="o", label=name)
    if logx:
        axes.set_xscale("log")
    if logy:
        axes.set_yscale("log")
    axes.set_title(title)
    axes.set_xlabel(x_label)
    axes.set_ylabel(y_label)
    axes.legend()
    figure.tight_layout()
    figure.savefig(path, dpi=120)
    plt.close(figure)
    return True
