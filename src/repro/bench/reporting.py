"""Plain-text table/series rendering for the experiment harness.

The benchmarks print the same rows/series the paper's figures report; this
module renders them as aligned ASCII tables so the output of
``pytest benchmarks/ --benchmark-only`` is directly comparable to the paper.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "write_csv", "write_json"]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render ``rows`` under ``columns`` as an aligned monospace table."""
    rendered_rows = [
        [_render_cell(cell, precision) for cell in row] for row in rows
    ]
    headers = [str(column) for column in columns]
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in rendered_rows))
        if rendered_rows
        else len(headers[index])
        for index in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(header.rjust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    precision: int = 3,
) -> str:
    """Render several named series over a shared x-axis (one row per x)."""
    columns = [x_label] + list(series)
    rows = [
        [x] + [series[name][index] for name in series]
        for index, x in enumerate(x_values)
    ]
    return format_table(title, columns, rows, precision)


def write_csv(
    path,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> None:
    """Write experiment rows as CSV (for external plotting tools)."""
    import csv

    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(columns))
        for row in rows:
            writer.writerow(list(row))


def write_json(path, payload: object, indent: int = 2) -> None:
    """Write a benchmark payload as pretty-printed JSON.

    Used by ``benchmarks/bench_kernels.py`` to emit machine-readable
    speedup reports (``BENCH_kernels.json``) next to the rendered tables.
    When an observation is active (``repro.obs``), its metric snapshot is
    attached to dict payloads under ``"metrics"`` so every ``BENCH_*.json``
    records the index/evaluator work behind its numbers.
    """
    import json

    from ..obs import current

    observation = current()
    if (
        observation.enabled
        and isinstance(payload, dict)
        and "metrics" not in payload
    ):
        payload = {**payload, "metrics": observation.registry.snapshot()}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")


def _render_cell(cell: object, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)
