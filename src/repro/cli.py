"""Command-line experiment driver: ``python -m repro.cli <command> …``.

Commands
--------
``fig10a`` / ``fig10b`` / ``fig10c`` / ``fig11``
    Regenerate one figure of the paper at a configurable scale.  Defaults
    are laptop-scale; pass ``--cardinality 100000 --time-scale 1.0
    --repetitions 100`` to approach the published setting (expect hours).
``solve``
    Run one algorithm on one freshly generated hard instance and print the
    result summary — the quickest way to try the library.
``generate`` / ``rerun``
    Persist a hard instance to a directory / re-run an algorithm on a
    previously persisted instance (bit-exact reproducibility).
``trace``
    Inspect JSONL traces produced by ``solve --trace``: ``trace summarize``
    prints the per-phase time/node-access table, ``trace validate`` checks
    every record against the event schema.
``bench``
    The perf-trajectory harness: ``bench run`` executes the
    ``benchmarks/bench_*.py`` families through a common runner that
    appends schema-versioned rows to the JSONL ledger, ``bench compare``
    diffs the ledger against the committed baseline and exits non-zero on
    a hot-path regression beyond the threshold, ``bench ledger``
    summarizes the measured trajectory across runs/commits.
``serve`` / ``query``
    Run the deadline-driven join service (:mod:`repro.service`) over
    registered datasets / issue one request against a running server.
``chaos``
    Fire a burst of deadline-bounded queries at a running server (usually
    one started with ``serve --fault-plan``) and assert the robustness
    contract: every query gets a structured answer, none drop.

Example::

    python -m repro.cli fig10a --variables 5 10 15 --repetitions 3
    python -m repro.cli solve --query clique --variables 8 --algorithm sea
    python -m repro.cli solve --algorithm gils --trace out.jsonl --metrics
    python -m repro.cli trace summarize out.jsonl
    python -m repro.cli serve --instance demo=./demo-dir --port 7447
    python -m repro.cli query --port 7447 --instance demo --deadline 2.0
    python -m repro.cli serve --instance demo=./demo-dir --fault-plan plan.json
    python -m repro.cli chaos --port 7447 --instance demo --queries 12
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Sequence

from .bench import (
    Fig10aConfig,
    Fig10bConfig,
    Fig10cConfig,
    Fig11Config,
    DEFAULT_TIME_THRESHOLD_PCT,
    QUERY_BUILDERS,
    TIERS,
    TIME_UNITS,
    compare_ledgers,
    discover_benchmarks,
    format_compare,
    format_series,
    format_table,
    new_run_id,
    read_ledger,
    run_benchmarks,
    section_series,
    summarize_ledger,
    write_csv,
    run_fig10a,
    run_fig10b,
    run_fig10c,
    run_fig11,
)
from .core import (
    Budget,
    GILSConfig,
    ILSConfig,
    SEAConfig,
    guided_indexed_local_search,
    indexed_branch_and_bound,
    indexed_local_search,
    parallel_restarts,
    portfolio_search,
    spatial_evolutionary_algorithm,
    two_step,
)
from .obs import (
    JsonlSink,
    Observation,
    merge_trace_files,
    observe,
    phase_rows,
    read_trace,
    summarize_trace,
)
from .faults import FaultPlan, run_chaos_queries
from .fleet import (
    PARTITION_METHODS,
    FleetHandle,
    load_fleet,
    partition_instance,
    save_partition,
)
from .query import hard_instance, load_instance, planted_instance, save_instance
from .service import DatasetRegistry, JoinClient, JoinServer

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (workers, restarts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-msj",
        description="Approximate multiway spatial joins (EDBT 2002 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--cardinality", type=int, default=2_000,
                        help="objects per dataset (paper: 100000)")
    common.add_argument("--repetitions", type=int, default=3,
                        help="executions averaged per cell (paper: 100)")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--time-scale", type=float, default=0.02,
                        help="fraction of the paper's time thresholds (1.0 = full)")
    common.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the table rows as CSV")

    p10a = commands.add_parser("fig10a", parents=[common],
                               help="similarity vs number of variables")
    p10a.add_argument("--variables", type=int, nargs="+", default=[5, 10, 15])
    p10a.add_argument("--queries", nargs="+", default=["chain", "clique"],
                      choices=sorted(QUERY_BUILDERS))

    p10b = commands.add_parser("fig10b", parents=[common],
                               help="similarity over time (n = 15)")
    p10b.add_argument("--variables", type=int, default=15)
    p10b.add_argument("--grid-points", type=int, default=8)

    p10c = commands.add_parser("fig10c", parents=[common],
                               help="similarity vs expected number of solutions")
    p10c.add_argument("--variables", type=int, default=15)
    p10c.add_argument("--solutions", type=float, nargs="+",
                      default=[1.0, 10.0, 1e2, 1e3, 1e4, 1e5])

    p11 = commands.add_parser("fig11", parents=[common],
                              help="time to exact solution: IBB vs two-step")
    p11.add_argument("--variables", type=int, nargs="+", default=[3, 4, 5])
    p11.add_argument("--ibb-cap", type=float, default=60.0,
                     help="cap (s) on each systematic search")

    solve = commands.add_parser("solve", help="run one algorithm on one instance")
    solve.add_argument("--query", default="clique", choices=sorted(QUERY_BUILDERS))
    solve.add_argument("--variables", type=int, default=8)
    solve.add_argument("--cardinality", type=int, default=2_000)
    solve.add_argument("--algorithm", default="sea",
                       choices=["ils", "gils", "sea", "ibb", "two-step",
                                "portfolio"])
    solve.add_argument("--seconds", type=float, default=5.0)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--target-solutions", type=float, default=1.0)
    solve.add_argument("--workers", type=_positive_int, default=1,
                       help="processes for portfolio members / restarts "
                            "(1 = run in-process)")
    solve.add_argument("--restarts", type=_positive_int, default=1,
                       help="independent seeds of one heuristic, best kept "
                            "(> 1 runs ils/gils/sea via parallel_restarts)")
    solve.add_argument("--trace", metavar="PATH", default=None,
                       help="write a schema-versioned JSONL event trace "
                            "(spans, metrics, convergence points)")
    solve.add_argument("--metrics", action="store_true",
                       help="collect and print the metrics registry after "
                            "the run")

    trace = commands.add_parser(
        "trace", help="inspect JSONL traces written by solve --trace"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_commands.add_parser(
        "summarize", help="per-phase time/node-access table of one or more "
        "traces (several files merge with per-source tagging)"
    )
    summarize.add_argument("paths", nargs="+", metavar="path",
                           help="trace file(s); a shell glob summarizes a "
                           "whole fleet run at once")
    validate = trace_commands.add_parser(
        "validate", help="check every record against the event schema"
    )
    validate.add_argument("paths", nargs="+", metavar="path")

    bench = commands.add_parser(
        "bench", help="run benchmarks, diff the perf ledger, inspect the "
        "trajectory"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_run = bench_commands.add_parser(
        "run", help="execute benchmarks/bench_*.py, appending ledger rows"
    )
    bench_run.add_argument("--benchmarks", default="benchmarks",
                           help="directory holding bench_*.py files")
    bench_run.add_argument("--tier", default="full", choices=sorted(TIERS),
                           help="named subset (smoke = CI-speed families)")
    bench_run.add_argument("--only", nargs="+", default=None, metavar="FAMILY",
                           help="run exactly these families (e.g. kernels "
                           "warm); overrides --tier")
    bench_run.add_argument("--ledger", default="BENCH_ledger.jsonl",
                           help="JSONL ledger rows are appended to")
    bench_run.add_argument("--scale", type=float, default=None,
                           help="REPRO_BENCH_SCALE exported to the benchmarks")
    bench_run.add_argument("--run-id", default=None,
                           help="run id stamped on every row (default: derived)")
    bench_compare = bench_commands.add_parser(
        "compare", help="diff the ledger against a baseline; exit 1 on a "
        "gated regression beyond the threshold"
    )
    bench_compare.add_argument("--ledger", default="BENCH_ledger.jsonl",
                               help="current ledger (the bench run output)")
    bench_compare.add_argument("--baseline",
                               default=os.path.join("benchmarks",
                                                    "BASELINE.jsonl"),
                               help="committed baseline ledger")
    bench_compare.add_argument("--threshold", type=float, default=10.0,
                               help="gated sections may move this many "
                               "percent before failing (strictly more "
                               "than; default 10)")
    bench_compare.add_argument("--time-threshold", type=float,
                               default=DEFAULT_TIME_THRESHOLD_PCT,
                               help="noise floor for wall-clock sections "
                               "(percent) — run-to-run scheduler noise on "
                               "shared runners makes a tight wall-time "
                               "gate pure flake (default "
                               f"{DEFAULT_TIME_THRESHOLD_PCT:g})")
    bench_ledger = bench_commands.add_parser(
        "ledger", help="summarize the measured trajectory across runs"
    )
    bench_ledger.add_argument("--ledger", default="BENCH_ledger.jsonl")
    bench_ledger.add_argument("--section", default=None, metavar="BENCH/SECTION",
                              help="print one section's value across every "
                              "run (e.g. kernels/count_violations_batch[2000])")

    generate = commands.add_parser(
        "generate", help="persist a hard instance to a directory"
    )
    generate.add_argument("directory")
    generate.add_argument("--query", default="clique", choices=sorted(QUERY_BUILDERS))
    generate.add_argument("--variables", type=int, default=5)
    generate.add_argument("--cardinality", type=int, default=2_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--target-solutions", type=float, default=1.0)
    generate.add_argument("--plant", action="store_true",
                          help="plant a guaranteed exact solution")

    rerun = commands.add_parser(
        "rerun", help="run an algorithm on a persisted instance"
    )
    rerun.add_argument("directory")
    rerun.add_argument("--algorithm", default="sea",
                       choices=["ils", "gils", "sea", "ibb"])
    rerun.add_argument("--seconds", type=float, default=5.0)
    rerun.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve", help="run the deadline-driven join service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port (printed at startup)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="solver pool size")
    serve.add_argument("--executor", default="process",
                       choices=["process", "thread"])
    serve.add_argument("--dataset", action="append", default=[],
                       metavar="NAME=PATH",
                       help="register a dataset file (.npz/.csv); repeatable")
    serve.add_argument("--instance", action="append", default=[],
                       metavar="NAME=DIR",
                       help="register a persisted instance directory; repeatable")
    serve.add_argument("--max-pending", type=_positive_int, default=16,
                       help="in-flight requests before load shedding")
    serve.add_argument("--deadline", type=float, default=5.0,
                       help="default per-request deadline (s)")
    serve.add_argument("--max-deadline", type=float, default=60.0,
                       help="requested deadlines are clamped to this")
    serve.add_argument("--cache-capacity", type=int, default=256,
                       help="solution cache entries (0 disables caching)")
    serve.add_argument("--cache-ttl", type=float, default=None,
                       help="solution cache expiry (s); default: no expiry")
    serve.add_argument("--algorithm", default="gils",
                       choices=["ils", "gils", "sea", "isa"],
                       help="heuristic when a request names none")
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="write the JSONL request log / event trace")
    serve.add_argument("--no-warm", action="store_true",
                       help="disable the shared-memory warm plane (process "
                       "workers re-load datasets instead of attaching)")
    serve.add_argument("--fault-plan", metavar="PATH", default=None,
                       help="JSON fault-injection plan activated in the "
                       "solve workers (chaos testing)")

    chaos = commands.add_parser(
        "chaos", help="storm a running join service and check the "
        "no-dropped-connections contract"
    )
    chaos.add_argument("--host", default="127.0.0.1")
    chaos.add_argument("--port", type=int, required=True)
    chaos.add_argument("--instance", required=True,
                       help="registered instance name to solve")
    chaos.add_argument("--queries", type=_positive_int, default=12)
    chaos.add_argument("--deadline", type=float, default=2.0,
                       help="per-query deadline (s)")
    chaos.add_argument("--max-iterations", type=_positive_int, default=2_000)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--retry-attempts", type=_positive_int, default=4,
                       help="client retry budget per query")
    chaos.add_argument("--expect-recovered", type=int, default=0,
                       help="fail unless at least this many answers "
                       "recovered from a worker crash")

    query = commands.add_parser(
        "query", help="issue one request against a running join service"
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, required=True)
    query.add_argument("--op", default="solve",
                       choices=["solve", "ping", "stats", "datasets", "shutdown"])
    query.add_argument("--instance", default=None,
                       help="solve a registered instance by name")
    query.add_argument("--query", default=None, choices=sorted(QUERY_BUILDERS),
                       help="query topology (with --variables and --datasets)")
    query.add_argument("--variables", type=_positive_int, default=None)
    query.add_argument("--datasets", nargs="+", default=None,
                       help="registered dataset names, one per variable")
    query.add_argument("--deadline", type=float, default=None)
    query.add_argument("--max-iterations", type=_positive_int, default=None)
    query.add_argument("--algorithm", default=None,
                       choices=["ils", "gils", "sea", "isa"])
    query.add_argument("--seed", type=int, default=0)
    query.add_argument("--restarts", type=_positive_int, default=1)
    query.add_argument("--no-cache", action="store_true",
                       help="bypass the server's solution cache")

    fleet = commands.add_parser(
        "fleet", help="partition, serve and query a sharded fleet "
        "(one JoinServer per spatial shard behind a cost-model router)"
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_partition = fleet_commands.add_parser(
        "partition", help="split a persisted instance into shard "
        "sub-instances plus a routable fleet manifest"
    )
    fleet_partition.add_argument("directory",
                                 help="persisted instance (see `generate`)")
    fleet_partition.add_argument("--out", required=True,
                                 help="output directory (shard-k/ dirs + "
                                 "fleet.json)")
    fleet_partition.add_argument("--shards", type=int, default=2,
                                 help="number of spatial shards (>= 2)")
    fleet_partition.add_argument("--method", default="str",
                                 choices=sorted(PARTITION_METHODS),
                                 help="str = data-adaptive STR tiles, "
                                 "grid = regular grid")
    fleet_partition.add_argument("--name", default="fleet",
                                 help="fleet (and routed instance) name")
    fleet_partition.add_argument("--replicas", type=_positive_int, default=1,
                                 help="hosts per tile (R-way replication: "
                                 "the router fails over inside the replica "
                                 "group and the answer stays exact)")
    fleet_serve = fleet_commands.add_parser(
        "serve", help="launch shard servers + router (or attach the router "
        "to externally running shards)"
    )
    fleet_serve.add_argument("--fleet", required=True, metavar="MANIFEST",
                             help="fleet.json written by `fleet partition`")
    fleet_serve.add_argument("--host", default="127.0.0.1")
    fleet_serve.add_argument("--port", type=int, default=0,
                             help="router port; 0 picks a free one "
                             "(printed at startup)")
    fleet_serve.add_argument("--attach", action="append", default=[],
                             metavar="SHARD=HOST:PORT",
                             help="attach to an already-running shard server "
                             "instead of launching one; repeatable, must "
                             "cover every shard when used")
    fleet_serve.add_argument("--workers", type=_positive_int, default=2,
                             help="solver pool size per launched shard")
    fleet_serve.add_argument("--executor", default="process",
                             choices=["process", "thread"])
    fleet_serve.add_argument("--max-pending", type=_positive_int, default=16)
    fleet_serve.add_argument("--deadline", type=float, default=5.0)
    fleet_serve.add_argument("--max-deadline", type=float, default=60.0)
    fleet_serve.add_argument("--cache-capacity", type=int, default=256,
                             help="router merged-solution cache (0 disables)")
    fleet_serve.add_argument("--no-hedge", action="store_true",
                             help="disable hedged duplicate sub-queries "
                             "against replicas")
    fleet_serve.add_argument("--supervise", action="store_true",
                             help="run the shard supervisor: probe shard "
                             "servers and respawn dead ones from the "
                             "manifest (bounded restart budget)")
    fleet_serve.add_argument("--pid", action="append", default=[],
                             metavar="SHARD=PID",
                             help="pid of an externally launched shard "
                             "(attach mode); the supervisor checks process "
                             "liveness in addition to pings (repeatable)")
    fleet_serve.add_argument("--trace", metavar="PATH", default=None,
                             help="router-side JSONL request log")
    fleet_serve.add_argument("--fault-plan", metavar="PATH", default=None,
                             help="chaos plan activated in the router "
                             "(fleet.dispatch site: simulated shard loss)")
    fleet_query = fleet_commands.add_parser(
        "query", help="issue one routed solve against a fleet router"
    )
    fleet_query.add_argument("--host", default="127.0.0.1")
    fleet_query.add_argument("--port", type=int, required=True)
    fleet_query.add_argument("--instance", required=True,
                             help="fleet name (the router's routed instance)")
    fleet_query.add_argument("--deadline", type=float, default=None)
    fleet_query.add_argument("--max-iterations", type=_positive_int,
                             default=None)
    fleet_query.add_argument("--algorithm", default=None,
                             choices=["ils", "gils", "sea", "isa"])
    fleet_query.add_argument("--seed", type=int, default=0)
    fleet_query.add_argument("--restarts", type=_positive_int, default=1)
    fleet_query.add_argument("--fanout", type=_positive_int, default=None,
                             help="contact only the k cheapest healthy "
                             "shards (default: all)")
    fleet_query.add_argument("--no-cache", action="store_true")
    fleet_status = fleet_commands.add_parser(
        "status", help="per-shard health/cost/dispatch table of a router"
    )
    fleet_status.add_argument("--host", default="127.0.0.1")
    fleet_status.add_argument("--port", type=int, required=True)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "fig10a": _cmd_fig10a,
        "fig10b": _cmd_fig10b,
        "fig10c": _cmd_fig10c,
        "fig11": _cmd_fig11,
        "solve": _cmd_solve,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "generate": _cmd_generate,
        "rerun": _cmd_rerun,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "chaos": _cmd_chaos,
        "fleet": _cmd_fleet,
    }[args.command]
    return int(handler(args) or 0)


def _cmd_fig10a(args: argparse.Namespace) -> None:
    config = Fig10aConfig(
        query_types=args.queries,
        variable_counts=args.variables,
        cardinality=args.cardinality,
        time_per_variable=10.0 * args.time_scale,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    rows = run_fig10a(config)
    algorithms = ["ILS", "GILS", "SEA"]
    columns = ["query", "n", "density", "time(s)"] + algorithms
    cells = [[r["query"], r["n"], r["density"], r["time_limit"]]
             + [r[a] for a in algorithms] for r in rows]
    print(format_table(
        "Figure 10a — best similarity vs number of query variables",
        columns,
        cells,
    ))
    if args.csv:
        write_csv(args.csv, columns, cells)


def _cmd_fig10b(args: argparse.Namespace) -> None:
    config = Fig10bConfig(
        num_variables=args.variables,
        cardinality=args.cardinality,
        time_limits={"chain": 40.0 * args.time_scale * 2.5,
                     "clique": 120.0 * args.time_scale * 2.5},
        grid_points=args.grid_points,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    output = run_fig10b(config)
    for query_type, data in output.items():
        grid = [round(t, 3) for t in data["grid"]]
        print(format_series(
            f"Figure 10b — similarity over time ({query_type}, "
            f"n={config.num_variables})",
            "t(s)",
            grid,
            data["series"],
        ))
        print()
        if args.csv:
            columns = ["t(s)"] + list(data["series"])
            cells = [
                [t] + [data["series"][name][index] for name in data["series"]]
                for index, t in enumerate(grid)
            ]
            write_csv(f"{args.csv}.{query_type}.csv", columns, cells)


def _cmd_fig10c(args: argparse.Namespace) -> None:
    config = Fig10cConfig(
        num_variables=args.variables,
        cardinality=args.cardinality,
        expected_solutions=args.solutions,
        time_limit=10.0 * args.variables * args.time_scale,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    rows = run_fig10c(config)
    algorithms = ["ILS", "GILS", "SEA"]
    columns = ["Sol", "density"] + algorithms
    cells = [[r["Sol"], r["density"]] + [r[a] for a in algorithms] for r in rows]
    print(format_table(
        "Figure 10c — best similarity vs expected number of solutions",
        columns,
        cells,
    ))
    if args.csv:
        write_csv(args.csv, columns, cells)


def _cmd_fig11(args: argparse.Namespace) -> None:
    config = Fig11Config(
        variable_counts=args.variables,
        cardinality=args.cardinality,
        ils_time=max(0.05, 1.0 * args.time_scale * 5),
        sea_time_per_variable=10.0 * args.time_scale,
        ibb_time_cap=args.ibb_cap,
        repetitions=args.repetitions,
        seed=args.seed,
    )
    rows = run_fig11(config)
    columns = ["n", "IBB", "IBB exact", "ILS+IBB", "ILS+IBB exact",
               "SEA+IBB", "SEA+IBB exact"]
    cells = [[r[c] for c in columns] for r in rows]
    print(format_table(
        "Figure 11 — mean seconds to retrieve the exact solution",
        columns,
        cells,
    ))
    if args.csv:
        write_csv(args.csv, columns, cells)


def _cmd_solve(args: argparse.Namespace) -> None:
    query = QUERY_BUILDERS[args.query](args.variables)
    instance = hard_instance(
        query, args.cardinality, seed=args.seed,
        target_solutions=args.target_solutions,
    )
    print(f"instance: {args.query} n={args.variables} N={args.cardinality} "
          f"density={instance.density:.4g} "
          f"expected solutions={instance.expected_solutions:.3g}")
    budget = Budget.seconds(args.seconds)
    if not (args.trace or args.metrics):
        _solve_and_report(args, instance, budget)
        return

    sink = JsonlSink(args.trace) if args.trace else None
    observation = Observation(sink=sink)
    try:
        with observe(observation):
            with observation.span("solve.run"):
                _solve_and_report(args, instance, budget)
            observation.emit_metrics()
    finally:
        observation.close()
    if args.trace:
        print(f"trace: {args.trace}")
    if args.metrics:
        snapshot = observation.registry.snapshot()
        rows = [list(item) for item in snapshot["counters"].items()]
        if rows:
            print(format_table("metrics — counters", ["metric", "value"], rows))
        for kind in ("gauges", "histograms"):
            if snapshot[kind]:
                print(f"{kind}: {snapshot[kind]}")


def _solve_and_report(
    args: argparse.Namespace, instance, budget: Budget
) -> None:
    if args.restarts > 1 and args.algorithm in ("ils", "gils", "sea"):
        result = parallel_restarts(
            instance, budget, seed=args.seed, heuristic=args.algorithm,
            restarts=args.restarts, workers=args.workers,
        )
    elif args.algorithm == "portfolio":
        result = portfolio_search(
            instance, budget, seed=args.seed, workers=args.workers
        )
    elif args.algorithm == "ils":
        result = indexed_local_search(instance, budget, args.seed, ILSConfig())
    elif args.algorithm == "gils":
        result = guided_indexed_local_search(instance, budget, args.seed, GILSConfig())
    elif args.algorithm == "sea":
        result = spatial_evolutionary_algorithm(instance, budget, args.seed, SEAConfig())
    elif args.algorithm == "ibb":
        result = indexed_branch_and_bound(instance, budget)
    else:
        combined = two_step(instance, "sea", heuristic_budget=budget,
                            systematic_budget=budget.spawn(), seed=args.seed)
        print(combined.summary())
        print(f"  heuristic : {combined.heuristic.summary()}")
        if combined.systematic is not None:
            print(f"  systematic: {combined.systematic.summary()}")
        return
    print(result.summary())
    if result.trace.points:
        print("convergence:")
        for point in result.trace.points[-5:]:
            print(f"  t={point.elapsed:8.3f}s similarity={point.similarity:.4f}")


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "validate":
        failed = False
        for path in args.paths:
            try:
                records = read_trace(path, validate=True)
            except ValueError as error:
                print(f"invalid trace: {error}", file=sys.stderr)
                failed = True
                continue
            print(f"{path}: {len(records)} records, all schema-valid")
        if failed:
            return 1
        if len(args.paths) > 1:
            merged = merge_trace_files(args.paths, validate=True)
            print(f"merged: {len(merged)} records from "
                  f"{len(args.paths)} source(s)")
        return 0

    if len(args.paths) == 1:
        label = args.paths[0]
        records = read_trace(label, validate=True)
    else:
        label = f"{len(args.paths)} files"
        records = merge_trace_files(args.paths, validate=True)
    summary = summarize_trace(records)
    print(f"trace: {label} — {summary['events']} events"
          + (f", members {summary['members']}" if summary["members"] else ""))
    if len(args.paths) > 1:
        by_source: dict[str, int] = {}
        for record in records:
            source = str(record.get("source", "?"))
            by_source[source] = by_source.get(source, 0) + 1
        print("sources: " + ", ".join(
            f"{source}={count}" for source, count in sorted(by_source.items())
        ))
    rows = phase_rows(summary)
    if rows:
        print(format_table(
            "per-phase wall time and node accesses",
            ["phase", "count", "time(s)", "node reads"],
            rows,
        ))
    convergence = summary["convergence"]
    if convergence is not None:
        print(f"convergence: {convergence['points']} points, final "
              f"violations={convergence['final_violations']} "
              f"similarity={convergence['final_similarity']:.4f}")
    for label in ("local_maxima", "restarts", "crossovers"):
        if summary[label]:
            print(f"{label.replace('_', ' ')}: {summary[label]}")
    requests = summary["requests"]
    if requests is not None:
        by_status = ", ".join(
            f"{status}={count}"
            for status, count in sorted(requests["by_status"].items())
        )
        print(f"requests: {requests['count']} ({by_status}), "
              f"total latency {requests['elapsed']:.3f}s")
    latency = summary["latency"]
    if latency is not None:
        print(f"solve latency: {latency['count']} request(s), "
              f"p50={latency['p50'] * 1000.0:.2f}ms "
              f"p95={latency['p95'] * 1000.0:.2f}ms "
              f"p99={latency['p99'] * 1000.0:.2f}ms")
    buffer = summary["buffer"]
    if buffer is not None:
        print(f"buffer pool: {buffer['hits']} hits / {buffer['misses']} misses "
              f"(hit ratio {buffer['hit_ratio']:.3f})")
    faults = summary["faults"]
    if faults is not None:
        detail = ", ".join(
            f"{name.replace('_', ' ')}={faults[name]}"
            for name in ("crashes", "hangs", "corruptions", "retries",
                         "rebuilds", "recovered_members", "lost_members")
            if faults[name]
        )
        print(f"faults: {detail or 'none recorded'}")
    metrics = summary["metrics"]
    if metrics and metrics.get("counters"):
        print(format_table(
            "final metric snapshot — counters",
            ["metric", "value"],
            [list(item) for item in metrics["counters"].items()],
        ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    return {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "ledger": _cmd_bench_ledger,
    }[args.bench_command](args)


def _cmd_bench_run(args: argparse.Namespace) -> int:
    try:
        files = discover_benchmarks(
            args.benchmarks, tier=args.tier, only=args.only
        )
    except (OSError, ValueError) as error:
        print(f"benchmark discovery failed: {error}", file=sys.stderr)
        return 2
    run_id = args.run_id or new_run_id()
    print(f"bench run {run_id}: {len(files)} file(s) -> {args.ledger}"
          + (f" (scale {args.scale:g})" if args.scale is not None else ""),
          flush=True)
    outcomes = run_benchmarks(
        files, ledger=args.ledger, run_id=run_id, scale=args.scale
    )
    failed = [outcome for outcome in outcomes if not outcome.ok]
    for outcome in outcomes:
        status = "ok" if outcome.ok else f"FAILED (exit {outcome.returncode})"
        print(f"  {outcome.family}: {status}")
    if failed:
        print(f"{len(failed)} benchmark file(s) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    for label, path in (("baseline", args.baseline), ("ledger", args.ledger)):
        if not os.path.exists(path):
            print(f"{label} not found: {path}"
                  + ("\nrun `repro bench run` first to produce a ledger"
                     if label == "ledger" else
                     "\ncommit a baseline with `repro bench run --ledger "
                     f"{args.baseline}`"),
                  file=sys.stderr)
            return 2
    try:
        baseline = read_ledger(args.baseline)
        current = read_ledger(args.ledger)
    except ValueError as error:
        print(f"invalid ledger: {error}", file=sys.stderr)
        return 2
    result = compare_ledgers(
        baseline, current,
        threshold_pct=args.threshold,
        time_threshold_pct=args.time_threshold,
    )
    print(format_compare(result))
    if result.failed:
        for entry in result.regressions:
            gate = (result.time_threshold_pct if entry.unit in TIME_UNITS
                    else result.threshold_pct)
            print(f"REGRESSION: {entry.bench}/{entry.section} "
                  f"{entry.baseline:.6g} -> {entry.current:.6g} {entry.unit} "
                  f"({entry.delta_pct:+.1f}%, better={entry.better}, "
                  f"threshold {gate:g}%)", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_ledger(args: argparse.Namespace) -> int:
    if not os.path.exists(args.ledger):
        print(f"ledger not found: {args.ledger}", file=sys.stderr)
        return 2
    try:
        rows = read_ledger(args.ledger)
    except ValueError as error:
        print(f"invalid ledger: {error}", file=sys.stderr)
        return 2
    if args.section is not None:
        bench, separator, section = args.section.partition("/")
        if not separator:
            print("--section expects BENCH/SECTION "
                  "(e.g. kernels/brute_force_join[40])", file=sys.stderr)
            return 2
        series = section_series(rows, bench, section)
        if not series:
            print(f"no rows for {bench}/{section} in {args.ledger}",
                  file=sys.stderr)
            return 2
        print(format_table(
            f"trajectory — {bench}/{section}",
            ["run", "commit", "when", "value", "unit"],
            [[point["run_id"], point["commit"] or "-",
              _ledger_when(point["ts"]), point["value"], point["unit"]]
             for point in series],
            precision=6,
        ))
        return 0
    summaries = summarize_ledger(rows)
    print(format_table(
        f"perf trajectory — {len(rows)} row(s), {len(summaries)} run(s)",
        ["run", "commit", "when", "scale", "benches", "rows"],
        [[summary["run_id"], summary["commit"] or "-",
          _ledger_when(summary["ts"]), summary["scale"],
          ",".join(summary["benches"]), summary["rows"]]
         for summary in summaries],
    ))
    return 0


def _ledger_when(ts: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(ts))


def _cmd_generate(args: argparse.Namespace) -> None:
    query = QUERY_BUILDERS[args.query](args.variables)
    if args.plant:
        instance = planted_instance(
            query, args.cardinality, seed=args.seed,
            target_solutions=args.target_solutions,
        )
    else:
        instance = hard_instance(
            query, args.cardinality, seed=args.seed,
            target_solutions=args.target_solutions,
        )
    instance.metadata.update(
        query=args.query, variables=args.variables, seed=args.seed,
        planted=bool(args.plant),
    )
    manifest = save_instance(instance, args.directory)
    print(f"wrote {manifest}")
    print(f"  {args.query} n={args.variables} N={args.cardinality} "
          f"density={instance.density:.4g}"
          + (f" planted={instance.planted}" if instance.planted else ""))


def _parse_registrations(pairs: list[str], flag: str) -> list[tuple[str, str]]:
    parsed = []
    for pair in pairs:
        name, separator, path = pair.partition("=")
        if not separator or not name or not path:
            raise SystemExit(f"{flag} expects NAME=PATH, got {pair!r}")
        parsed.append((name, path))
    return parsed


def _cmd_serve(args: argparse.Namespace) -> int:
    registry = DatasetRegistry()
    try:
        for name, path in _parse_registrations(args.dataset, "--dataset"):
            registry.register_path(name, path)
        for name, path in _parse_registrations(args.instance, "--instance"):
            registry.register_instance_dir(name, path)
    except (FileNotFoundError, ValueError) as error:
        print(f"registration failed: {error}", file=sys.stderr)
        return 1
    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"cannot load fault plan: {error}", file=sys.stderr)
            return 1
    server = JoinServer(
        registry,
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        max_pending=args.max_pending,
        default_deadline=args.deadline,
        max_deadline=args.max_deadline,
        cache_capacity=args.cache_capacity,
        cache_ttl=args.cache_ttl,
        warm=False if args.no_warm else None,
        default_algorithm=args.algorithm,
        fault_plan=fault_plan,
    )

    async def _serve() -> None:
        await server.start()
        host, port = server.address
        print(f"listening on {host}:{port} "
              f"({args.workers} {args.executor} workers, "
              f"datasets: {registry.dataset_names() or '-'}, "
              f"instances: {registry.instance_names() or '-'})",
              flush=True)
        # machine-parseable: fleet smokes launch N servers on --port 0
        # and scrape the bound port from this line
        print(f"ready host={host} port={port}", flush=True)
        print(f"warm plane: {'on' if server.warm else 'off'}", flush=True)
        if fault_plan is not None:
            print(f"fault plan active: {len(fault_plan.specs)} spec(s) at "
                  f"{sorted(fault_plan.sites())}", flush=True)
        try:
            await server.wait_for_shutdown()
        finally:
            await server.stop()
            if server.warm_report is not None:
                report = server.warm_report
                print(f"warm plane shutdown: {report['datasets']} dataset(s), "
                      f"{report['unlinked']} segment(s) unlinked, "
                      f"{len(report['leaked'])} leaked", flush=True)

    if args.trace is None:
        asyncio.run(_serve())
        return 0
    observation = Observation(sink=JsonlSink(args.trace))
    try:
        with observe(observation):
            asyncio.run(_serve())
            observation.emit_metrics()
    finally:
        observation.close()
    print(f"trace: {args.trace}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    try:
        client = JoinClient(args.host, args.port)
    except OSError as error:
        print(f"cannot connect to {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    with client:
        if args.op != "solve":
            response = client.request(
                {"v": 1, "op": args.op, "id": f"cli-{args.op}"}
            )
            print(json.dumps(response, indent=2, sort_keys=True))
            return 0 if response.get("status") == "ok" else 1
        fields: dict[str, object] = {
            "seed": args.seed,
            "restarts": args.restarts,
            "cache": not args.no_cache,
        }
        if args.instance is not None:
            fields["instance"] = args.instance
        elif args.query is not None:
            if args.variables is None or args.datasets is None:
                print("--query needs --variables and --datasets", file=sys.stderr)
                return 1
            fields["query"] = {"type": args.query, "variables": args.variables}
            fields["datasets"] = args.datasets
        else:
            print("query solve needs --instance or --query", file=sys.stderr)
            return 1
        if args.deadline is not None:
            fields["deadline"] = args.deadline
        if args.max_iterations is not None:
            fields["max_iterations"] = args.max_iterations
        if args.algorithm is not None:
            fields["algorithm"] = args.algorithm
        response = client.solve(check=False, **fields)  # type: ignore[arg-type]
        if response.get("status") != "ok":
            error = response.get("error", {})
            print(f"error: {error.get('code')} — {error.get('message')} "
                  f"(retryable: {error.get('retryable')})", file=sys.stderr)
            return 1
        print(f"cache: {'hit' if response['cached'] else 'miss'}")
        if "warm_started" in response:
            print(f"warm: {'started' if response['warm_started'] else 'cold'}")
        print(f"result: {'exact' if response['exact'] else 'approximate'} "
              f"violations={response['violations']} "
              f"similarity={response['similarity']:.4f}")
        print(f"search: algorithm={response['algorithm']} "
              f"iterations={response['iterations']} "
              f"elapsed={response['elapsed']:.3f}s")
        print(f"assignment: {response['assignment']}")
        return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    try:
        tally = run_chaos_queries(
            args.host,
            args.port,
            instance=args.instance,
            queries=args.queries,
            deadline=args.deadline,
            max_iterations=args.max_iterations,
            seed=args.seed,
            retry_attempts=args.retry_attempts,
        )
    except OSError as error:
        print(f"cannot connect to {args.host}:{args.port}: {error}", file=sys.stderr)
        return 1
    codes = ", ".join(
        f"{code}={count}" for code, count in sorted(tally["codes"].items())
    )
    print(f"chaos: {tally['queries']} queries — {tally['ok']} ok "
          f"({tally['exact']} exact, {tally['approximate']} approximate, "
          f"{tally['recovered']} recovered), "
          f"{tally['retryable_errors']} retryable errors, "
          f"{tally['dropped']} dropped"
          + (f" [codes: {codes}]" if codes else ""))
    failed = False
    if tally["dropped"]:
        print(f"FAIL: {tally['dropped']} query(ies) dropped without a "
              "structured response", file=sys.stderr)
        failed = True
    if tally["recovered"] < args.expect_recovered:
        print(f"FAIL: expected >= {args.expect_recovered} recovered answers, "
              f"saw {tally['recovered']}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    return {
        "partition": _cmd_fleet_partition,
        "serve": _cmd_fleet_serve,
        "query": _cmd_fleet_query,
        "status": _cmd_fleet_status,
    }[args.fleet_command](args)


def _cmd_fleet_partition(args: argparse.Namespace) -> int:
    try:
        instance = load_instance(args.directory)
    except (OSError, ValueError) as error:
        print(f"cannot load instance: {error}", file=sys.stderr)
        return 1
    try:
        partition = partition_instance(
            instance, args.shards, method=args.method, name=args.name,
            replicas=args.replicas,
        )
    except ValueError as error:
        print(f"partition failed: {error}", file=sys.stderr)
        return 1
    manifest = save_partition(partition, args.out)
    print(f"wrote {manifest}")
    print(format_table(
        f"fleet {args.name} — {args.shards} {args.method} shard(s), "
        f"{args.replicas} replica(s)",
        ["shard", "objects", "cost", "hosts", "tile"],
        [[shard.name, sum(shard.counts), round(shard.cost_total, 3),
          ",".join(shard.replica_group),
          "[" + ", ".join(f"{c:.3f}" for c in shard.tile) + "]"]
         for shard in partition.spec.shards],
    ))
    return 0


def _parse_endpoints(pairs: list[str]) -> dict[str, tuple[str, int]]:
    endpoints: dict[str, tuple[str, int]] = {}
    for pair in pairs:
        name, separator, address = pair.partition("=")
        host, colon, port = address.rpartition(":")
        if not separator or not name or not host or not colon or not port.isdigit():
            raise SystemExit(f"--attach expects SHARD=HOST:PORT, got {pair!r}")
        endpoints[name] = (host, int(port))
    return endpoints


def _parse_pids(pairs: list[str]) -> dict[str, int]:
    pids: dict[str, int] = {}
    for pair in pairs:
        name, separator, pid = pair.partition("=")
        if not separator or not name or not pid.isdigit():
            raise SystemExit(f"--pid expects SHARD=PID, got {pair!r}")
        pids[name] = int(pid)
    return pids


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    try:
        spec = load_fleet(args.fleet)
    except (OSError, ValueError) as error:
        print(f"cannot load fleet manifest: {error}", file=sys.stderr)
        return 1
    endpoints = _parse_endpoints(args.attach) or None
    if endpoints is not None:
        missing = [s.name for s in spec.shards if s.name not in endpoints]
        if missing:
            print(f"--attach must cover every shard; missing {missing}",
                  file=sys.stderr)
            return 1
    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as error:
            print(f"cannot load fault plan: {error}", file=sys.stderr)
            return 1
    def _supervisor_line(line: str) -> None:
        # flushed so external drivers (CI) can tail respawn events live
        print(line, flush=True)

    handle = FleetHandle(
        spec,
        endpoints=endpoints,
        host=args.host,
        router_port=args.port,
        workers=args.workers,
        executor=args.executor,
        max_pending=args.max_pending,
        default_deadline=args.deadline,
        max_deadline=args.max_deadline,
        cache_capacity=args.cache_capacity,
        hedge=not args.no_hedge,
        supervise=args.supervise,
        supervisor_log=_supervisor_line,
        pids=_parse_pids(args.pid),
        fault_plan=fault_plan,
    )

    async def _serve() -> None:
        await handle.start()
        for name, (host, port) in sorted(handle.shard_addresses.items()):
            mode = "attached" if endpoints is not None else "launched"
            print(f"shard {mode} name={name} host={host} port={port}",
                  flush=True)
        host, port = handle.address
        print(f"listening on {host}:{port} "
              f"(fleet {spec.name!r}, {len(spec.shards)} shard(s), "
              f"method {spec.method})", flush=True)
        print(f"ready host={host} port={port}", flush=True)
        if handle.supervisor is not None:
            policy = handle.supervisor.policy
            print(f"supervising {len(spec.server_names)} server(s): "
                  f"probe every {policy.probe_interval}s, "
                  f"restart budget {policy.max_restarts} "
                  f"(≤{policy.budget():.2f}s backoff)", flush=True)
        if fault_plan is not None:
            print(f"fault plan active: {len(fault_plan.specs)} spec(s) at "
                  f"{sorted(fault_plan.sites())}", flush=True)
        try:
            await handle.wait_for_shutdown()
        finally:
            await handle.stop()

    if args.trace is None:
        asyncio.run(_serve())
        return 0
    observation = Observation(sink=JsonlSink(args.trace))
    try:
        with observe(observation):
            asyncio.run(_serve())
            observation.emit_metrics()
    finally:
        observation.close()
    print(f"trace: {args.trace}")
    return 0


def _cmd_fleet_query(args: argparse.Namespace) -> int:
    try:
        client = JoinClient(args.host, args.port)
    except OSError as error:
        print(f"cannot connect to {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    record: dict[str, object] = {
        "v": 1,
        "op": "solve",
        "id": "cli-fleet-solve",
        "instance": args.instance,
        "seed": args.seed,
        "restarts": args.restarts,
        "cache": not args.no_cache,
    }
    if args.deadline is not None:
        record["deadline"] = args.deadline
    if args.max_iterations is not None:
        record["max_iterations"] = args.max_iterations
    if args.algorithm is not None:
        record["algorithm"] = args.algorithm
    if args.fanout is not None:
        record["fanout"] = args.fanout
    with client:
        response = client.request(record)
    if response.get("status") != "ok":
        error = response.get("error", {})
        print(f"error: {error.get('code')} — {error.get('message')} "
              f"(retryable: {error.get('retryable')})", file=sys.stderr)
        return 1
    print(f"cache: {'hit' if response['cached'] else 'miss'}")
    fleet = response.get("fleet", {})
    if not fleet.get("cached"):
        print(f"routing: {len(fleet.get('answered', []))}/"
              f"{fleet.get('shards', '?')} shard(s) answered "
              f"(winner {fleet.get('shard', '-')}, "
              f"lost {fleet.get('lost', [])}, "
              f"degraded {fleet.get('degraded', False)})")
        if fleet.get("failover") or fleet.get("hedged"):
            print(f"healing: failover {fleet.get('failover', [])}, "
                  f"hedged {fleet.get('hedged', [])}")
    print(f"result: {'exact' if response['exact'] else 'approximate'} "
          f"violations={response['violations']} "
          f"similarity={response['similarity']:.4f}"
          + (" recovered" if response.get("recovered") else ""))
    print(f"search: algorithm={response['algorithm']} "
          f"iterations={response['iterations']} "
          f"elapsed={response['elapsed']:.3f}s")
    print(f"assignment: {response['assignment']}")
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    try:
        client = JoinClient(args.host, args.port)
    except OSError as error:
        print(f"cannot connect to {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    with client:
        response = client.request({"v": 1, "op": "stats", "id": "cli-fleet-stats"})
    if response.get("status") != "ok" or "fleet" not in response:
        print("not a fleet router (no fleet stats in response)", file=sys.stderr)
        return 1
    fleet = response["fleet"]
    hedge = fleet.get("hedge", {})
    print(f"fleet {fleet['name']!r} ({fleet['method']}, "
          f"{fleet.get('replicas', 1)} replica(s)): "
          f"{response['requests_total']} request(s), "
          f"{response['errors_total']} error(s), "
          f"{fleet['degraded_total']} degraded, "
          f"{fleet.get('failover_total', 0)} failover(s), "
          f"hedges {hedge.get('won', 0)}/{hedge.get('launched', 0)} won "
          f"({hedge.get('suppressed', 0)} suppressed)")

    def _age(value: object) -> str:
        return "-" if value is None else f"{value:.1f}s"

    print(format_table(
        "shards",
        ["shard", "endpoint", "healthy", "cost", "bias", "inflight",
         "dispatched", "answered", "lost", "probed", "changed"],
        [[s["name"], f"{s['endpoint'][0]}:{s['endpoint'][1]}",
          "yes" if s["healthy"] else "DOWN", round(s["cost"], 3),
          round(s.get("bias", s["cost"]), 3), s.get("inflight", 0),
          s["dispatched"], s["answered"], s["lost"],
          _age(s.get("last_probe_age")),
          _age(s.get("since_state_change"))]
         for s in fleet["shards"]],
    ))
    supervisor = fleet.get("supervisor")
    if supervisor is not None:
        policy = supervisor["policy"]
        print(f"supervisor: {supervisor['respawns_total']} respawn "
              f"attempt(s), budget {policy['max_restarts']} restart(s) "
              f"(≤{policy['budget']:.2f}s backoff)")
        print(format_table(
            "supervised servers",
            ["server", "state", "restarts", "failed attempts"],
            [[name, state["state"], state["restarts"],
              state["failed_attempts"]]
             for name, state in supervisor["servers"].items()],
        ))
    return 0


def _cmd_rerun(args: argparse.Namespace) -> None:
    instance = load_instance(args.directory)
    print(f"loaded instance: n={instance.num_variables} "
          f"N={instance.cardinalities[0]} density={instance.density}")
    budget = Budget.seconds(args.seconds)
    runners = {
        "ils": lambda: indexed_local_search(instance, budget, args.seed, ILSConfig()),
        "gils": lambda: guided_indexed_local_search(
            instance, budget, args.seed, GILSConfig()
        ),
        "sea": lambda: spatial_evolutionary_algorithm(
            instance, budget, args.seed, SEAConfig()
        ),
        "ibb": lambda: indexed_branch_and_bound(instance, budget),
    }
    print(runners[args.algorithm]().summary())


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
