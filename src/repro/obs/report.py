"""Turn a raw event trace into per-phase summaries.

:func:`summarize_trace` is the analysis half of ``repro trace summarize``:
given the records of one JSONL trace (or an in-memory sink) it aggregates
``span_close`` events into a per-phase wall-time / node-access table,
collects the convergence staircase, and surfaces the final metric
snapshot.  Pure dict-in/dict-out so tests and plotting scripts can reuse
it without the CLI.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Optional, Sequence

__all__ = ["summarize_trace", "phase_rows", "service_latency"]

#: the span whose close events are a request's end-to-end solve latency
SERVICE_SOLVE_SPAN = "service.solve"


def summarize_trace(records: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate a sequence of event records into a summary dict.

    Returns::

        {
          "events": <total records>,
          "members": sorted member indices seen (empty for single-process),
          "phases": {name: {"count", "elapsed", "node_reads"}},
          "convergence": {"points", "final_violations", "final_similarity"}
            or None,
          "local_maxima": <count>, "restarts": <count>, "crossovers": <count>,
          "requests": {"count", "by_status", "elapsed"} or None,
          "latency": {"count", "p50", "p95", "p99"} or None,
          "buffer": {"hits", "misses", "hit_ratio"} or None,
          "faults": {"crashes", "hangs", "corruptions", "retries",
            "rebuilds", "recovered_members", "lost_members"} or None,
          "metrics": last metric_snapshot payload or None,
        }

    ``requests`` aggregates the service request log; ``latency`` holds
    nearest-rank p50/p95/p99 over the ``service.solve`` span closes (the
    end-to-end per-request solve latency, present only for service
    traces); ``buffer`` reads the
    ``index.buffer.*`` counters out of the final metric snapshot (present
    only when a buffer pool was attached during the run); ``faults`` reads
    the ``faults.*`` recovery counters the same way (present only when
    faults were injected or recovered from during the run).

    ``node_reads`` per phase is ``None`` when no span of that name carried
    an io probe, otherwise the sum over probed spans.
    """
    phases: dict[str, dict[str, Any]] = {}
    members: set[int] = set()
    metrics: Optional[dict[str, Any]] = None
    convergence: Optional[dict[str, Any]] = None
    points = 0
    local_maxima = 0
    restarts = 0
    crossovers = 0
    total = 0
    requests: Optional[dict[str, Any]] = None
    latency_samples: list[float] = []
    for record in records:
        total += 1
        member = record.get("member")
        if isinstance(member, int):
            members.add(member)
        event_type = record.get("type")
        if event_type == "span_close":
            name = str(record.get("name", ""))
            phase = phases.get(name)
            if phase is None:
                phase = phases[name] = {
                    "count": 0,
                    "elapsed": 0.0,
                    "node_reads": None,
                }
            phase["count"] += 1
            phase["elapsed"] += float(record.get("elapsed", 0.0))
            reads = record.get("node_reads")
            if reads is not None:
                phase["node_reads"] = (phase["node_reads"] or 0) + int(reads)
            if name == SERVICE_SOLVE_SPAN:
                latency_samples.append(float(record.get("elapsed", 0.0)))
        elif event_type == "convergence":
            points += 1
            convergence = {
                "points": points,
                "final_violations": record.get("violations"),
                "final_similarity": record.get("similarity"),
            }
        elif event_type == "local_maximum":
            local_maxima += 1
        elif event_type == "restart":
            restarts += 1
        elif event_type == "crossover":
            crossovers += 1
        elif event_type == "request":
            if requests is None:
                requests = {"count": 0, "by_status": {}, "elapsed": 0.0}
            requests["count"] += 1
            status = str(record.get("status", "?"))
            requests["by_status"][status] = requests["by_status"].get(status, 0) + 1
            requests["elapsed"] += float(record.get("elapsed", 0.0))
        elif event_type == "metric_snapshot":
            metrics = dict(record.get("metrics", {}))
    buffer: Optional[dict[str, Any]] = None
    if metrics is not None:
        counters = metrics.get("counters", {})
        hits = counters.get("index.buffer.hit")
        misses = counters.get("index.buffer.miss")
        if hits is not None or misses is not None:
            hits, misses = int(hits or 0), int(misses or 0)
            accesses = hits + misses
            buffer = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": (hits / accesses) if accesses else 0.0,
            }
    faults: Optional[dict[str, Any]] = None
    if metrics is not None:
        counters = metrics.get("counters", {})
        observed = {
            key.split(".", 1)[1]: int(value)
            for key, value in counters.items()
            if key.startswith("faults.")
        }
        if observed:
            faults = {
                name: observed.get(name, 0)
                for name in (
                    "crashes", "hangs", "corruptions", "retries", "rebuilds",
                    "recovered_members", "lost_members",
                )
            }
    return {
        "events": total,
        "members": sorted(members),
        "phases": {name: phases[name] for name in sorted(phases)},
        "convergence": convergence,
        "local_maxima": local_maxima,
        "restarts": restarts,
        "crossovers": crossovers,
        "requests": requests,
        "latency": _latency_stats(latency_samples),
        "buffer": buffer,
        "faults": faults,
        "metrics": metrics,
    }


def service_latency(
    records: Iterable[Mapping[str, Any]],
    span_name: str = SERVICE_SOLVE_SPAN,
) -> Optional[dict[str, Any]]:
    """Request-latency percentiles over one span's ``span_close`` events.

    Returns ``{"count", "p50", "p95", "p99"}`` in seconds (nearest-rank
    percentiles — deterministic, no interpolation), or ``None`` when the
    trace closed no span of that name.  This is the same statistic
    ``trace summarize`` surfaces and the bench ledger attaches to its obs
    snapshots.
    """
    samples = [
        float(record.get("elapsed", 0.0))
        for record in records
        if record.get("type") == "span_close" and record.get("name") == span_name
    ]
    return _latency_stats(samples)


def _latency_stats(samples: Sequence[float]) -> Optional[dict[str, Any]]:
    if not samples:
        return None
    ordered = sorted(samples)
    return {
        "count": len(ordered),
        "p50": _nearest_rank(ordered, 50.0),
        "p95": _nearest_rank(ordered, 95.0),
        "p99": _nearest_rank(ordered, 99.0),
    }


def _nearest_rank(ordered: Sequence[float], q: float) -> float:
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def phase_rows(summary: Mapping[str, Any]) -> list[list[Any]]:
    """Flatten a summary's phase table into printable rows.

    Columns: phase, count, total elapsed seconds, total node reads
    (``"-"`` when the phase carried no io probe).
    """
    rows: list[list[Any]] = []
    for name, phase in summary.get("phases", {}).items():
        reads = phase.get("node_reads")
        rows.append(
            [
                name,
                phase.get("count", 0),
                phase.get("elapsed", 0.0),
                "-" if reads is None else reads,
            ]
        )
    return rows
