"""Process-local registry of named counters, gauges and histograms.

The registry is the numerical half of the observability layer: algorithms
increment counters as they work, R*-tree deltas (:class:`TreeStats`) are
absorbed under the ``index.*`` prefix, and :meth:`MetricsRegistry.snapshot`
renders everything as a plain JSON-ready dict.  Snapshots from parallel
workers merge deterministically — counters and histograms combine, gauges
keep their maximum — independent of worker scheduling.
"""

from __future__ import annotations

from typing import Any, Mapping

from .names import check_metric_name

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value metric (merged across workers by maximum)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values: count / total / min / max."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }


class _NullCounter:
    """No-op counter handed out by the disabled observation."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create store of named metrics with deterministic snapshots."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            check_metric_name(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            check_metric_name(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            check_metric_name(name)
            metric = self._histograms[name] = Histogram(name)
        return metric

    def absorb_index_work(self, delta: Mapping[str, int]) -> None:
        """Fold a :meth:`TreeStats.snapshot`-shaped delta into ``index.*``."""
        for key in sorted(delta):
            amount = delta[key]
            if amount:
                self.counter(f"index.{key}").inc(amount)

    def snapshot(self) -> dict[str, Any]:
        """Plain sorted-dict rendering — JSON- and pickle-friendly."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold one :meth:`snapshot` payload into this registry.

        Deterministic: counters and histogram components are commutative
        sums (min/max for the extremes), gauges keep the maximum, and keys
        are visited in sorted order so registration order is stable too.
        """
        for name in sorted(snapshot.get("counters", {})):
            self.counter(name).inc(int(snapshot["counters"][name]))
        for name in sorted(snapshot.get("gauges", {})):
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, float(snapshot["gauges"][name])))
        for name in sorted(snapshot.get("histograms", {})):
            summary = snapshot["histograms"][name]
            histogram = self.histogram(name)
            count = int(summary.get("count", 0))
            if count == 0:
                continue
            histogram.count += count
            histogram.total += float(summary.get("total", 0.0))
            histogram.minimum = min(histogram.minimum, float(summary["min"]))
            histogram.maximum = max(histogram.maximum, float(summary["max"]))
