"""Nestable timing spans emitting ``span_open``/``span_close`` events.

A span brackets one phase of a run (``gils.climb``, ``sea.generation``,
…); entering it emits ``span_open``, leaving it emits ``span_close`` with
the wall time spent inside and — when an ``io`` probe is supplied — the
number of index node reads performed while it was open.  Spans nest: each
records its parent's id and depth, so a trace reconstructs the phase tree.

Wall time comes from the observation's injectable
:class:`~repro.core.budget.Stopwatch` (this module is on the RL002 clock
allowlist but never reads a clock directly).  When observability is
disabled the cached :data:`NULL_SPAN` is handed out instead — entering and
leaving it does nothing, which is the <2 % no-op fast path the benchmarks
guard.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .names import check_span_name

__all__ = ["Span", "Tracer", "NULL_SPAN"]

#: callable emitting one event: (event type, payload fields)
_Emit = Callable[..., None]


class Span:
    """One single-use timing bracket; create via :meth:`Tracer.span`."""

    __slots__ = (
        "_tracer",
        "name",
        "_io",
        "_id",
        "_parent",
        "_depth",
        "_started_at",
        "_io_start",
        "elapsed",
        "node_reads",
    )

    def __init__(
        self, tracer: "Tracer", name: str, io: Optional[Callable[[], int]]
    ) -> None:
        self._tracer = tracer
        self.name = name
        self._io = io
        self._id = -1
        self._parent: int | None = None
        self._depth = 0
        self._started_at = 0.0
        self._io_start = 0
        #: seconds spent inside the span (set on exit)
        self.elapsed = 0.0
        #: node reads performed inside the span (None without an io probe)
        self.node_reads: int | None = None

    def __enter__(self) -> "Span":
        if self._id >= 0:
            raise RuntimeError(f"span {self.name!r} is single-use")
        tracer = self._tracer
        self._id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self._parent = stack[-1] if stack else None
        self._depth = len(stack)
        stack.append(self._id)
        if self._io is not None:
            self._io_start = self._io()
        self._started_at = tracer._elapsed()
        tracer._emit(
            "span_open",
            name=self.name,
            span=self._id,
            parent=self._parent,
            depth=self._depth,
        )
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        self.elapsed = tracer._elapsed() - self._started_at
        if self._io is not None:
            self.node_reads = self._io() - self._io_start
        if tracer._stack and tracer._stack[-1] == self._id:
            tracer._stack.pop()
        tracer._emit(
            "span_close",
            name=self.name,
            span=self._id,
            elapsed=self.elapsed,
            node_reads=self.node_reads,
        )


class _NullSpan:
    """Shared no-op span: entering/leaving costs two method calls."""

    __slots__ = ()

    name = ""
    elapsed = 0.0
    node_reads: int | None = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and nesting bookkeeper for :class:`Span` objects."""

    __slots__ = ("_emit", "_elapsed", "_stack", "_next_id")

    def __init__(self, emit: _Emit, elapsed: Callable[[], float]) -> None:
        self._emit = emit
        self._elapsed = elapsed
        self._stack: list[int] = []
        self._next_id = 0

    def span(self, name: str, io: Optional[Callable[[], int]] = None) -> Span:
        """A new span named ``name`` (validated against the registry).

        ``io`` is an optional zero-argument probe returning a cumulative
        node-read count; the span reports the probe's delta on close.
        """
        check_span_name(name)
        return Span(self, name, io)

    @property
    def depth(self) -> int:
        """Current nesting depth (open spans)."""
        return len(self._stack)

    def payload(self) -> dict[str, Any]:  # pragma: no cover - debug aid
        return {"open_spans": list(self._stack), "next_id": self._next_id}
