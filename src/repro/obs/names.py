"""Registered span and metric names (the observability vocabulary).

Every span and metric name in the engine is declared here and validated at
creation time.  Central registration keeps the vocabulary *closed*: names
are dotted lowercase (``subsystem.thing``), grep-able, and cannot drift per
call site — repro-lint rule RL006 statically enforces that spans/metrics
are only created with string literals registered in this module.
"""

from __future__ import annotations

import re

__all__ = [
    "NAME_PATTERN",
    "SPAN_NAMES",
    "METRIC_NAMES",
    "check_span_name",
    "check_metric_name",
]

#: dotted lowercase: at least two ``[a-z][a-z0-9_]*`` segments
NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: every span the engine may open, grouped by subsystem
SPAN_NAMES = frozenset(
    {
        # CLI / drivers
        "solve.run",
        # heuristics: one ``*.run`` root per algorithm, phases nested inside
        "ils.run",
        "ils.seed",
        "ils.climb",
        "gils.run",
        "gils.seed",
        "gils.climb",
        "sea.run",
        "sea.init",
        "sea.generation",
        "isa.run",
        "ibb.run",
        "two_step.heuristic",
        "two_step.systematic",
        # multi-run drivers
        "parallel.run",
        "portfolio.run",
        # query service: one span per solve, opened inside the worker
        "service.solve",
        # warm plane: shared-memory publish / attach
        "warm.publish",
        "warm.attach",
        # fleet router: the synchronous merge of shard partial solutions
        # (the scatter itself is traced via ``fleet.*`` counters — async
        # interleaving would garble span nesting)
        "fleet.merge",
    }
)

#: every counter/gauge/histogram the engine may register
METRIC_NAMES = frozenset(
    {
        # R*-tree work, absorbed from TreeStats deltas (index.<field>)
        "index.node_reads",
        "index.leaf_reads",
        "index.window_queries",
        "index.knn_queries",
        "index.best_value_searches",
        "index.splits",
        "index.reinserts",
        "index.inserts",
        "index.deletes",
        # per-algorithm counters
        "ils.restarts",
        "ils.local_maxima",
        "gils.local_maxima",
        "gils.penalties_issued",
        "sea.generations",
        "sea.mutations",
        "sea.crossovers",
        "sea.immigrants",
        "isa.proposals",
        "isa.accepted_moves",
        "ibb.nodes_expanded",
        # evaluator / kernel branches
        "eval.violation_checks",
        "eval.batch_rows",
        "best_value.kernel_searches",
        "best_value.scalar_searches",
        "kernels.scalar_fallback_rows",
        "kernels.scalar_pair_matrices",
        # cross-process aggregation
        "parallel.members",
        # R*-tree buffer pool (emitted when a BufferPool is attached)
        "index.buffer.hit",
        "index.buffer.miss",
        # query service
        "service.requests",
        "service.cache.hit",
        "service.cache.miss",
        "service.queue.depth",
        "service.shed",
        "service.approximate",
        "service.latency",
        # per-request warm classification (exact cache hit / seeded / cold)
        "service.warm.exact_hit",
        "service.warm.start",
        "service.warm.cold",
        # warm plane segment lifecycle
        "warm.publishes",
        "warm.attaches",
        # fault injection & recovery (parallel supervision + service)
        "faults.crashes",
        "faults.hangs",
        "faults.corruptions",
        "faults.retries",
        "faults.rebuilds",
        "faults.recovered_members",
        "faults.lost_members",
        # fleet router: scatter/merge across per-shard JoinServers
        "fleet.requests",
        "fleet.shed",
        "fleet.degraded",
        "fleet.cache.hit",
        "fleet.cache.miss",
        "fleet.shard.lost",
        "fleet.shard.recovered",
        "fleet.shards.healthy",
        "fleet.latency",
        # self-healing fleet: replica failover, hedged scatter, respawn
        "fleet.failover",
        "fleet.hedge.launched",
        "fleet.hedge.won",
        "fleet.hedge.suppressed",
        "fleet.respawn.attempt",
        "fleet.respawn.ok",
        "fleet.respawn.failed",
        "fleet.respawn.gave_up",
    }
)


def _check(name: str, registry: frozenset[str], kind: str) -> None:
    if not NAME_PATTERN.match(name):
        raise ValueError(
            f"{kind} name {name!r} is not dotted lowercase (expected e.g. 'ils.climb')"
        )
    if name not in registry:
        raise ValueError(
            f"unregistered {kind} name {name!r}; register it in repro/obs/names.py"
        )


def check_span_name(name: str) -> None:
    """Raise ``ValueError`` unless ``name`` is a registered span name."""
    _check(name, SPAN_NAMES, "span")


def check_metric_name(name: str) -> None:
    """Raise ``ValueError`` unless ``name`` is a registered metric name."""
    _check(name, METRIC_NAMES, "metric")
