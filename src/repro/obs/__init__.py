"""Unified observability: spans, metrics, and JSONL event traces.

One :class:`Observation` bundles the three halves of the subsystem — a
:class:`~repro.obs.spans.Tracer` for nested timing spans, a
:class:`~repro.obs.metrics.MetricsRegistry` for counters/gauges/histograms,
and an :class:`~repro.obs.events.EventSink` receiving schema-versioned
records.  Algorithms never hold an observation; they ask for the ambient
one::

    from ..obs import current

    obs = current()
    with obs.span("gils.climb"):
        obs.counter("gils.local_maxima").inc()

By default the ambient observation is the shared no-op singleton: ``span``
returns a cached null span, ``counter`` a null counter, and ``event`` does
nothing, so instrumentation costs a handful of attribute lookups when
nobody is watching (benchmarked <2 % — see ``benchmarks/bench_obs_overhead``).
Drivers opt in with::

    with observe(Observation(sink=JsonlSink("trace.jsonl"))) as obs:
        result = guided_indexed_local_search(instance, budget)

This package deliberately imports nothing from the rest of ``repro`` at
module level (``Stopwatch`` and ``ConvergenceTrace`` are imported lazily)
so that ``core``/``geometry`` modules can import ``repro.obs`` at their
top level without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, Optional, Union

from .aggregate import collect_exports, export_state, merge_states, replay_into
from .events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    EventSink,
    JsonlSink,
    MemorySink,
    merge_trace_files,
    read_trace,
    validate_event,
)
from .metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .names import METRIC_NAMES, SPAN_NAMES, check_metric_name, check_span_name
from .report import phase_rows, service_latency, summarize_trace
from .spans import NULL_SPAN, Span, Tracer

__all__ = [
    "Observation",
    "current",
    "activate",
    "observe",
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "merge_trace_files",
    "read_trace",
    "validate_event",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "SPAN_NAMES",
    "METRIC_NAMES",
    "check_span_name",
    "check_metric_name",
    "export_state",
    "merge_states",
    "replay_into",
    "collect_exports",
    "summarize_trace",
    "phase_rows",
    "service_latency",
]

_EMITTING_TRACE_CLASS: Optional[type] = None


def _rebuild_trace(points: tuple) -> Any:
    """Pickle helper: an emitting trace unpickles as a plain ConvergenceTrace."""
    from ..core.result import ConvergenceTrace

    trace = ConvergenceTrace()
    for point in points:
        trace.record(point.elapsed, point.iterations, point.violations, point.similarity)
    return trace


def _emitting_trace_class() -> type:
    """Build (once) a ConvergenceTrace subclass that mirrors into events.

    Lazy so this package never imports ``repro.core`` at module level.
    """
    global _EMITTING_TRACE_CLASS
    if _EMITTING_TRACE_CLASS is None:
        from ..core.result import ConvergenceTrace

        class _EmittingTrace(ConvergenceTrace):
            """ConvergenceTrace that also emits ``convergence`` events."""

            def __init__(self, observation: "Observation") -> None:
                super().__init__()
                self._observation = observation

            def record(
                self,
                elapsed: float,
                iterations: int,
                violations: int,
                similarity: float,
            ) -> None:
                super().record(elapsed, iterations, violations, similarity)
                self._observation.event(
                    "convergence",
                    elapsed=float(elapsed),
                    iterations=int(iterations),
                    violations=int(violations),
                    similarity=float(similarity),
                )

            def __reduce__(self):
                # the observation (and its sink) never crosses the process
                # boundary: pickle back to a plain ConvergenceTrace
                return (_rebuild_trace, (tuple(self.points),))

        _EMITTING_TRACE_CLASS = _EmittingTrace
    return _EMITTING_TRACE_CLASS


def _default_elapsed() -> Callable[[], float]:
    from ..core.budget import Stopwatch

    return Stopwatch().elapsed


class Observation:
    """A live observation: tracer + metrics registry + event sink."""

    enabled = True

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        registry: Optional[MetricsRegistry] = None,
        stopwatch: Optional[Any] = None,
    ) -> None:
        self.sink: EventSink = sink if sink is not None else MemorySink()
        self.registry = registry if registry is not None else MetricsRegistry()
        if stopwatch is not None:
            self._elapsed: Callable[[], float] = stopwatch.elapsed
        else:
            self._elapsed = _default_elapsed()
        self.tracer = Tracer(self.event, self._elapsed)

    # -- events ---------------------------------------------------------
    def event(self, event_type: str, **fields: Any) -> None:
        """Emit one schema-versioned record through the sink."""
        record: dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": event_type,
            "ts": self._elapsed(),
        }
        record.update(fields)
        self.sink.emit(record)

    def emit_metrics(self) -> None:
        """Emit a ``metric_snapshot`` event of the registry's current state."""
        self.event("metric_snapshot", metrics=self.registry.snapshot())

    # -- spans ----------------------------------------------------------
    def span(self, name: str, io: Optional[Callable[[], int]] = None) -> Span:
        return self.tracer.span(name, io)

    # -- metrics --------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def absorb_index_work(self, delta: Mapping[str, int]) -> None:
        self.registry.absorb_index_work(delta)

    # -- adapters -------------------------------------------------------
    def convergence_trace(self) -> Any:
        """A ConvergenceTrace that mirrors each point as a ``convergence`` event."""
        return _emitting_trace_class()(self)

    def close(self) -> None:
        self.sink.close()


class _DisabledObservation:
    """Shared no-op observation: every operation is a cheap constant."""

    enabled = False
    sink = None
    registry = None

    __slots__ = ()

    def event(self, event_type: str, **fields: Any) -> None:
        pass

    def emit_metrics(self) -> None:
        pass

    def span(self, name: str, io: Optional[Callable[[], int]] = None) -> Any:
        return NULL_SPAN

    def counter(self, name: str) -> Any:
        return NULL_COUNTER

    def gauge(self, name: str) -> Any:
        return NULL_GAUGE

    def histogram(self, name: str) -> Any:
        return NULL_HISTOGRAM

    def absorb_index_work(self, delta: Mapping[str, int]) -> None:
        pass

    def convergence_trace(self) -> Any:
        from ..core.result import ConvergenceTrace

        return ConvergenceTrace()

    def close(self) -> None:
        pass


NOOP = _DisabledObservation()

_ACTIVE: Union[Observation, _DisabledObservation] = NOOP


def current() -> Union[Observation, _DisabledObservation]:
    """The ambient observation (the no-op singleton unless one is active)."""
    return _ACTIVE


def activate(
    observation: Union[Observation, _DisabledObservation, None],
) -> Union[Observation, _DisabledObservation]:
    """Install ``observation`` as ambient; returns the previous one.

    Pass ``None`` (or :data:`NOOP`) to disable observation.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = observation if observation is not None else NOOP
    return previous


@contextmanager
def observe(
    observation: Optional[Observation] = None,
) -> Iterator[Observation]:
    """Run a block under ``observation`` (a fresh MemorySink one by default)."""
    if observation is None:
        observation = Observation()
    previous = activate(observation)
    try:
        yield observation
    finally:
        activate(previous)
