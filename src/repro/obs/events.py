"""Schema-versioned event records and buffered JSONL sinks.

Every observable moment of a run — a span opening or closing, a metric
snapshot, an incumbent improvement, a local maximum / restart / crossover —
becomes one flat JSON record.  Records share four base fields::

    {"v": 1, "type": "span_close", "ts": 0.1234, "seq": 17, ...}

``ts`` is seconds since the owning observation started (per process — a
worker's timestamps are relative to *its* run), ``seq`` is the sink-assigned
emission index.  Records merged from parallel workers additionally carry a
``member`` index.  Unknown extra fields are allowed (forward compatibility);
missing or mistyped required fields fail :func:`validate_event`.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "EventSink",
    "MemorySink",
    "JsonlSink",
    "validate_event",
    "read_trace",
    "merge_trace_files",
]

#: bump when the record layout changes incompatibly
SCHEMA_VERSION = 1

_FieldSpec = dict[str, tuple[type, ...]]

_BASE_FIELDS: _FieldSpec = {
    "v": (int,),
    "type": (str,),
    "ts": (int, float),
    "seq": (int,),
}

#: required payload fields (and accepted types) per event type
_TYPE_FIELDS: dict[str, _FieldSpec] = {
    "span_open": {"name": (str,), "span": (int,), "parent": (int, type(None)), "depth": (int,)},
    "span_close": {"name": (str,), "span": (int,), "elapsed": (int, float), "node_reads": (int, type(None))},
    "metric_snapshot": {"metrics": (dict,)},
    "convergence": {"elapsed": (int, float), "iterations": (int,), "violations": (int,), "similarity": (int, float)},
    "local_maximum": {"violations": (int,)},
    "restart": {"index": (int,)},
    "crossover": {"generation": (int,), "point": (int,)},
    "request": {"op": (str,), "status": (str,), "elapsed": (int, float)},
}

EVENT_TYPES = frozenset(_TYPE_FIELDS)


def validate_event(record: object) -> dict[str, Any]:
    """Check one record against the schema; returns it, raises ``ValueError``.

    Booleans are rejected where integers are expected (``True`` is an
    ``int`` subclass but never a meaningful count or index).
    """
    if not isinstance(record, dict):
        raise ValueError(f"event record must be an object, got {type(record).__name__}")
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported event schema version {version!r}")
    event_type = record.get("type")
    if event_type not in EVENT_TYPES:
        raise ValueError(
            f"unknown event type {event_type!r}; known: {sorted(EVENT_TYPES)}"
        )
    required = dict(_BASE_FIELDS)
    required.update(_TYPE_FIELDS[event_type])
    for field, accepted in required.items():
        if field not in record:
            raise ValueError(f"{event_type} record is missing field {field!r}")
        value = record[field]
        if isinstance(value, bool) or not isinstance(value, accepted):
            raise ValueError(
                f"{event_type} field {field!r} has invalid value {value!r}"
            )
    member = record.get("member")
    if member is not None and (isinstance(member, bool) or not isinstance(member, int)):
        raise ValueError(f"member must be an int, got {member!r}")
    return record


class EventSink:
    """Base sink: assigns sequence numbers and forwards to :meth:`_write`."""

    def __init__(self) -> None:
        self._seq = 0

    def emit(self, record: dict[str, Any]) -> dict[str, Any]:
        """Stamp ``record`` with the next sequence number and persist it."""
        record["seq"] = self._seq
        self._seq += 1
        self._write(record)
        return record

    def _write(self, record: dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Force buffered records out (no-op for unbuffered sinks)."""

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MemorySink(EventSink):
    """Keeps records as dicts in memory — tests and worker export buffers."""

    def __init__(self) -> None:
        super().__init__()
        self.records: list[dict[str, Any]] = []

    def _write(self, record: dict[str, Any]) -> None:
        self.records.append(record)


class JsonlSink(EventSink):
    """Buffered one-record-per-line JSON file sink.

    Records are serialised immediately (so later mutation cannot corrupt
    the trace) but written in batches of ``buffer_size`` lines.
    """

    def __init__(self, path: str, buffer_size: int = 256) -> None:
        super().__init__()
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        self.path = str(path)
        self._buffer_size = buffer_size
        self._buffer: list[str] = []
        self._handle = open(self.path, "w", encoding="utf-8")

    def _write(self, record: dict[str, Any]) -> None:
        self._buffer.append(json.dumps(record, sort_keys=True))
        if len(self._buffer) >= self._buffer_size:
            self.flush()

    def flush(self) -> None:
        if self._buffer and not self._handle.closed:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._handle.flush()

    def close(self) -> None:
        self.flush()
        if not self._handle.closed:
            self._handle.close()


def read_trace(path: str, validate: bool = True) -> list[dict[str, Any]]:
    """Parse (and by default validate) every record of a JSONL trace file."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {error}") from None
            if validate:
                try:
                    validate_event(record)
                except ValueError as error:
                    raise ValueError(f"{path}:{line_number}: {error}") from None
            records.append(record)
    return records


def merge_trace_files(
    paths: Iterable[str], validate: bool = True
) -> list[dict[str, Any]]:
    """Read several trace files into one record list, tagged per source.

    Each record gains a ``source`` field naming the file it came from
    (basename when unambiguous, the full path otherwise), so a merged
    fleet trace — router plus every shard — can still be sliced per
    process.  ``validate_event`` tolerates extra fields, so tagged
    records remain schema-valid.  Records are ordered by timestamp so
    interleaved multi-process activity reads chronologically.
    """
    paths = list(paths)
    basenames = [path.replace("\\", "/").rsplit("/", 1)[-1] for path in paths]
    labels = [
        basename if basenames.count(basename) == 1 else path
        for path, basename in zip(paths, basenames)
    ]
    merged: list[dict[str, Any]] = []
    for path, label in zip(paths, labels):
        for record in read_trace(path, validate=validate):
            tagged = dict(record)
            tagged.setdefault("source", label)
            merged.append(tagged)
    merged.sort(key=lambda record: record.get("ts", 0.0))
    return merged


def dump_records(records: Iterable[dict[str, Any]], path: str) -> None:
    """Write in-memory records as a JSONL trace (the MemorySink escape hatch)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
