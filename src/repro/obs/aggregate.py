"""Cross-process aggregation of worker observations.

Workers in ``core/parallel.py`` each run under their own
:class:`~repro.obs.Observation` backed by a :class:`MemorySink`.  At the
end of a run the worker calls :func:`export_state` and ships the plain-dict
payload back through the ``ProcessPoolExecutor`` result pickle (inside
``RunResult.stats["obs"]``).  The parent merges every payload with
:func:`merge_states` — deterministically, ordered by member index, never by
completion order — and optionally replays the merged events into its own
sink via :func:`replay_into`, tagging each record with the ``member`` that
produced it.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence, TYPE_CHECKING

from .events import SCHEMA_VERSION, MemorySink
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from . import Observation

__all__ = ["export_state", "merge_states", "replay_into", "collect_exports"]


def export_state(observation: "Observation") -> dict[str, Any]:
    """Render an observation as a pickle/JSON-safe payload for the parent.

    Events are only exportable from a :class:`MemorySink`; file-backed
    sinks export an empty event list (their records are already on disk).
    """
    sink = observation.sink
    events: list[dict[str, Any]]
    if isinstance(sink, MemorySink):
        events = [dict(record) for record in sink.records]
    else:
        events = []
    return {
        "v": SCHEMA_VERSION,
        "metrics": observation.registry.snapshot(),
        "events": events,
    }


def merge_states(
    payloads: Sequence[Optional[Mapping[str, Any]]],
) -> dict[str, Any]:
    """Deterministically merge per-member :func:`export_state` payloads.

    ``payloads`` is indexed by member; ``None`` entries (members that ran
    without observation) are skipped but keep their index.  Metrics merge
    commutatively through :meth:`MetricsRegistry.merge`; events are
    concatenated in ``(member, seq)`` order with a ``member`` tag added.
    """
    registry = MetricsRegistry()
    events: list[dict[str, Any]] = []
    members: list[int] = []
    for member, payload in enumerate(payloads):
        if payload is None:
            continue
        members.append(member)
        registry.merge(payload.get("metrics", {}))
        member_events = payload.get("events", [])
        for record in sorted(member_events, key=lambda r: r.get("seq", 0)):
            events.append({**record, "member": member})
    return {
        "v": SCHEMA_VERSION,
        "metrics": registry.snapshot(),
        "events": events,
        "members": members,
    }


def replay_into(observation: "Observation", merged: Mapping[str, Any]) -> None:
    """Fold a :func:`merge_states` result into a live parent observation.

    Merged events are re-emitted through the parent's sink (which assigns
    fresh ``seq`` numbers while preserving merge order); merged metrics
    fold into the parent's registry.
    """
    for record in merged.get("events", ()):  # member tag already present
        observation.sink.emit(dict(record))
    observation.registry.merge(merged.get("metrics", {}))


def collect_exports(
    stats_list: Iterable[Optional[Mapping[str, Any]]],
) -> list[Optional[dict[str, Any]]]:
    """Pop the ``"obs"`` payload out of each member's ``RunResult.stats``.

    Mutates the stats dicts in place (the raw per-member payload would
    otherwise bloat every ``RunResult`` with duplicated event lists).
    """
    payloads: list[Optional[dict[str, Any]]] = []
    for stats in stats_list:
        if isinstance(stats, dict):
            payloads.append(stats.pop("obs", None))
        else:
            payloads.append(None)
    return payloads
