"""T2 — unroll raw/fig10b.jsonl ledger rows into results.csv.

Each ledger row carries the full similarity-over-time staircase in its
``meta`` (grid + series); the CSV is the long format: one row per
(query type, algorithm, time point).
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import write_csv  # noqa: E402
from repro.bench.ledger import read_ledger  # noqa: E402


def main() -> None:
    rows = read_ledger(os.path.join(HERE, "raw", "fig10b.jsonl"))
    out = []
    for row in rows:
        query, algorithm = row["section"].split("/")
        for t, similarity in zip(row["meta"]["grid"], row["meta"]["series"]):
            out.append([query, algorithm, t, similarity])
    out.sort(key=lambda r: (r[0], r[1], r[2]))
    write_csv(
        os.path.join(HERE, "results.csv"),
        ["query", "algorithm", "t", "similarity"],
        out,
    )
    print(f"wrote results.csv ({len(out)} time points)")


if __name__ == "__main__":
    main()
