"""T3 — render Figure 10b (best similarity over time, n = 15).

Reads results.csv, writes fig10b.txt (ASCII, one panel per query type)
and PNGs when matplotlib is importable; the text chart is always printed.
"""

import csv
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import ascii_chart, save_png  # noqa: E402


def main() -> None:
    with open(os.path.join(HERE, "results.csv"), newline="") as handle:
        rows = list(csv.DictReader(handle))

    panels = []
    for query in ("chain", "clique"):
        sub = [r for r in rows if r["query"] == query]
        if not sub:
            continue
        xs = sorted({float(r["t"]) for r in sub})
        series = {}
        for r in sub:
            series.setdefault(r["algorithm"], dict())[float(r["t"])] = float(
                r["similarity"]
            )
        aligned = {
            name: [points.get(x) for x in xs]
            for name, points in sorted(series.items())
        }
        title = f"Figure 10b ({query}, n=15) — similarity over time"
        panels.append(ascii_chart(
            title, xs, aligned, x_label="t (s)", y_label="similarity",
        ))
        if save_png(os.path.join(HERE, f"fig10b_{query}.png"), title, xs,
                    aligned, x_label="t (s)", y_label="similarity"):
            print(f"wrote fig10b_{query}.png")

    chart = "\n\n".join(panels)
    with open(os.path.join(HERE, "fig10b.txt"), "w") as handle:
        handle.write(chart + "\n")
    print(chart)
    print("wrote fig10b.txt")


if __name__ == "__main__":
    main()
