"""T3 — render Figure 10c (best similarity vs expected #solutions, n = 15).

Reads results.csv, writes fig10c.txt (ASCII, log-x) and fig10c.png when
matplotlib is importable; the text chart is always printed.
"""

import csv
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import ascii_chart, save_png  # noqa: E402

ALGORITHMS = ("ILS", "GILS", "SEA")


def main() -> None:
    with open(os.path.join(HERE, "results.csv"), newline="") as handle:
        rows = sorted(csv.DictReader(handle), key=lambda r: float(r["Sol"]))

    xs = [float(r["Sol"]) for r in rows]
    series = {a: [float(r[a]) for r in rows] for a in ALGORITHMS}
    title = "Figure 10c (clique, n=15) — similarity vs expected #solutions"
    chart = ascii_chart(
        title, xs, series,
        x_label="expected solutions (log)", y_label="similarity", logx=True,
    )
    if save_png(os.path.join(HERE, "fig10c.png"), title, xs, series,
                x_label="expected solutions", y_label="similarity", logx=True):
        print("wrote fig10c.png")

    with open(os.path.join(HERE, "fig10c.txt"), "w") as handle:
        handle.write(chart + "\n")
    print(chart)
    print("wrote fig10c.txt")


if __name__ == "__main__":
    main()
