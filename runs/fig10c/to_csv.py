"""T2 — pivot raw/fig10c.jsonl ledger rows into results.csv.

One CSV row per expected-solutions target with the best similarity of
each algorithm, matching the axes of Figure 10c in the paper.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import write_csv  # noqa: E402
from repro.bench.ledger import read_ledger  # noqa: E402

ALGORITHMS = ("ILS", "GILS", "SEA")


def main() -> None:
    rows = read_ledger(os.path.join(HERE, "raw", "fig10c.jsonl"))
    cells = {}
    for row in rows:
        _, algorithm = row["section"].split("/")
        sol = float(row["meta"]["Sol"])
        cell = cells.setdefault(sol, {
            "Sol": sol,
            "density": row["meta"]["density"],
        })
        cell[algorithm] = row["value"]
    columns = ["Sol", "density", *ALGORITHMS]
    ordered = sorted(cells.values(), key=lambda c: c["Sol"])
    write_csv(
        os.path.join(HERE, "results.csv"),
        columns,
        [[cell[column] for column in columns] for cell in ordered],
    )
    print(f"wrote results.csv ({len(ordered)} solution targets)")


if __name__ == "__main__":
    main()
