"""T3 — render Figure 11 (seconds to the exact solution, log-y).

Reads results.csv, writes fig11.txt (ASCII) and fig11.png when
matplotlib is importable; the text chart is always printed.
"""

import csv
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import ascii_chart, save_png  # noqa: E402

METHODS = ("IBB", "ILS+IBB", "SEA+IBB")


def main() -> None:
    with open(os.path.join(HERE, "results.csv"), newline="") as handle:
        rows = sorted(csv.DictReader(handle), key=lambda r: int(r["n"]))

    xs = [int(r["n"]) for r in rows]
    series = {m: [max(float(r[m]), 1e-4) for r in rows] for m in METHODS}
    title = "Figure 11 — seconds to the exact solution (cliques, planted Sol=1)"
    chart = ascii_chart(
        title, xs, series,
        x_label="n (variables)", y_label="t (s, log)", logy=True,
    )
    if save_png(os.path.join(HERE, "fig11.png"), title, xs, series,
                x_label="n (variables)", y_label="t (s)", logy=True):
        print("wrote fig11.png")

    with open(os.path.join(HERE, "fig11.txt"), "w") as handle:
        handle.write(chart + "\n")
    print(chart)
    print("wrote fig11.txt")


if __name__ == "__main__":
    main()
