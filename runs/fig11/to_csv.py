"""T2 — pivot raw/fig11.jsonl ledger rows into results.csv.

One CSV row per query size n with the mean seconds-to-exact-solution of
plain IBB and the two two-step methods, plus their exact-hit tallies.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import write_csv  # noqa: E402
from repro.bench.ledger import read_ledger  # noqa: E402

METHODS = ("IBB", "ILS+IBB", "SEA+IBB")


def main() -> None:
    rows = read_ledger(os.path.join(HERE, "raw", "fig11.jsonl"))
    cells = {}
    for row in rows:
        n_part, method = row["section"].split("/")
        n = int(n_part.removeprefix("n="))
        cell = cells.setdefault(n, {"n": n})
        cell[method] = row["value"]
        cell[f"{method} exact"] = row["meta"]["exact"]
    columns = ["n"] + [c for m in METHODS for c in (m, f"{m} exact")]
    ordered = sorted(cells.values(), key=lambda c: c["n"])
    write_csv(
        os.path.join(HERE, "results.csv"),
        columns,
        [[cell[column] for column in columns] for cell in ordered],
    )
    print(f"wrote results.csv ({len(ordered)} query sizes)")


if __name__ == "__main__":
    main()
