#!/usr/bin/env bash
# T1 of the Figure 11 recipe (see README.md): run the benchmark and land
# its ledger rows in raw/fig11.jsonl, then chain T2 (to_csv) and T3 (plot).
set -euo pipefail
cd "$(dirname "$0")"
REPO_ROOT="$(cd ../.. && pwd)"

mkdir -p raw
rm -f raw/fig11.jsonl

export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:${PYTHONPATH}}"
export REPRO_LEDGER_PATH="$(pwd)/raw/fig11.jsonl"
export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-0.1}"

python -m pytest "${REPO_ROOT}/benchmarks/bench_fig11.py" -q -p no:cacheprovider
python to_csv.py
python plot.py
