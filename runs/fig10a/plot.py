"""T3 — render Figure 10a (best similarity vs number of variables).

Reads results.csv, writes fig10a.txt (ASCII, one panel per query type) and
fig10a.png when matplotlib is importable; the text chart is always printed.
"""

import csv
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import ascii_chart, save_png  # noqa: E402

ALGORITHMS = ("ILS", "GILS", "SEA")


def main() -> None:
    with open(os.path.join(HERE, "results.csv"), newline="") as handle:
        rows = list(csv.DictReader(handle))

    panels = []
    for query in ("chain", "clique"):
        cells = sorted(
            (r for r in rows if r["query"] == query), key=lambda r: int(r["n"])
        )
        if not cells:
            continue
        xs = [int(r["n"]) for r in cells]
        series = {a: [float(r[a]) for r in cells] for a in ALGORITHMS}
        title = f"Figure 10a ({query}) — best similarity vs n"
        panels.append(ascii_chart(
            title, xs, series,
            x_label="n (variables)", y_label="similarity",
        ))
        if save_png(os.path.join(HERE, f"fig10a_{query}.png"), title, xs,
                    series, x_label="n (variables)", y_label="similarity"):
            print(f"wrote fig10a_{query}.png")

    chart = "\n\n".join(panels)
    with open(os.path.join(HERE, "fig10a.txt"), "w") as handle:
        handle.write(chart + "\n")
    print(chart)
    print("wrote fig10a.txt")


if __name__ == "__main__":
    main()
