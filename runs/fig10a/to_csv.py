"""T2 — pivot raw/fig10a.jsonl ledger rows into results.csv.

One CSV row per (query type, n) grid cell with the best similarity of each
algorithm, matching the axes of Figure 10a in the paper.
"""

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(HERE, "..", "..", "src"))

from repro.bench import write_csv  # noqa: E402
from repro.bench.ledger import read_ledger  # noqa: E402

ALGORITHMS = ("ILS", "GILS", "SEA")


def main() -> None:
    rows = read_ledger(os.path.join(HERE, "raw", "fig10a.jsonl"))
    cells = {}
    for row in rows:
        query, n_part, algorithm = row["section"].split("/")
        n = int(n_part.removeprefix("n="))
        cell = cells.setdefault((query, n), {
            "query": query,
            "n": n,
            "density": row["meta"]["density"],
            "time_limit": row["meta"]["time_limit"],
        })
        cell[algorithm] = row["value"]
    columns = ["query", "n", "density", "time_limit", *ALGORITHMS]
    ordered = sorted(cells.values(), key=lambda c: (c["query"], c["n"]))
    write_csv(
        os.path.join(HERE, "results.csv"),
        columns,
        [[cell[column] for column in columns] for cell in ordered],
    )
    print(f"wrote results.csv ({len(ordered)} grid cells)")


if __name__ == "__main__":
    main()
